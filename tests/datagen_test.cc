#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/workload.h"

namespace pverify {
namespace {

TEST(SyntheticTest, RespectsCountAndDomain) {
  datagen::SyntheticConfig config;
  config.count = 1234;
  config.domain_lo = 10.0;
  config.domain_hi = 500.0;
  Dataset data = datagen::MakeSynthetic(config);
  ASSERT_EQ(data.size(), 1234u);
  for (const UncertainObject& obj : data) {
    EXPECT_GE(obj.lo(), 10.0);
    EXPECT_LE(obj.hi(), 500.0);
    EXPECT_LT(obj.lo(), obj.hi());
  }
}

TEST(SyntheticTest, IdsAreSequential) {
  Dataset data = datagen::MakeUniformScatter(100);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].id(), static_cast<ObjectId>(i));
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  datagen::SyntheticConfig config;
  config.count = 50;
  config.seed = 99;
  Dataset a = datagen::MakeSynthetic(config);
  Dataset b = datagen::MakeSynthetic(config);
  config.seed = 100;
  Dataset c = datagen::MakeSynthetic(config);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].lo() != b[i].lo() || a[i].hi() != b[i].hi()) all_equal = false;
    if (a[i].lo() != c[i].lo()) differs_from_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(SyntheticTest, PdfKindsApplied) {
  datagen::SyntheticConfig config;
  config.count = 10;
  config.pdf = datagen::PdfKind::kGaussian;
  config.gaussian_bars = 300;
  Dataset data = datagen::MakeSynthetic(config);
  for (const UncertainObject& obj : data) {
    EXPECT_EQ(obj.pdf().name(), "gaussian");
    EXPECT_EQ(obj.pdf().num_bars(), 300u);
  }
  config.pdf = datagen::PdfKind::kUniform;
  data = datagen::MakeSynthetic(config);
  for (const UncertainObject& obj : data) {
    EXPECT_EQ(obj.pdf().name(), "uniform");
  }
  config.pdf = datagen::PdfKind::kMixed;
  data = datagen::MakeSynthetic(config);
  EXPECT_EQ(data[0].pdf().name(), "uniform");
  EXPECT_EQ(data[1].pdf().name(), "gaussian");
  EXPECT_EQ(data[2].pdf().name(), "triangular");
}

TEST(SyntheticTest, LongBeachLikeDefaults) {
  Dataset data = datagen::MakeLongBeachLike();
  EXPECT_EQ(data.size(), 53144u);  // paper §V-A cardinality
  double max_hi = 0.0;
  for (const UncertainObject& obj : data) max_hi = std::max(max_hi, obj.hi());
  EXPECT_LE(max_hi, 10000.0);
}

TEST(SyntheticTest, AverageCandidateSetNearPaper) {
  // The paper reports ~96 candidates on average after filtering. Our
  // synthetic stand-in should be in the same regime (tens to ~200).
  Dataset data = datagen::MakeLongBeachLike();
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(30, 0.0, 10000.0, 55);
  double total = 0.0;
  for (double q : queries) total += exec.Filter(q).candidates.size();
  double avg = total / queries.size();
  EXPECT_GE(avg, 20.0);
  EXPECT_LE(avg, 300.0);
}

TEST(Synthetic2DTest, RegionsInsideDomain) {
  datagen::Synthetic2DConfig config;
  config.count = 300;
  Dataset2D data = datagen::MakeSynthetic2D(config);
  ASSERT_EQ(data.size(), 300u);
  size_t circles = 0;
  for (const UncertainObject2D& obj : data) {
    EXPECT_GT(obj.Area(), 0.0);
    if (!obj.is_rect()) ++circles;
  }
  EXPECT_GT(circles, 50u);
  EXPECT_LT(circles, 250u);
}

TEST(Synthetic2DClusteredTest, ObjectsConcentrateAroundDiagonalCenters) {
  datagen::Synthetic2DClusteredConfig config;
  config.count = 400;
  config.domain = 10000.0;
  config.num_clusters = 4;
  config.cluster_stddev = 150.0;
  Dataset2D data = datagen::MakeSynthetic2DClustered(config);
  ASSERT_EQ(data.size(), 400u);

  // Default centers sit at domain*(i+0.5)/4 on the diagonal. Every object
  // must lie within a few stddevs of SOME center (clamped to the domain),
  // i.e. the scatter is genuinely clustered, not uniform.
  const double centers[] = {1250.0, 3750.0, 6250.0, 8750.0};
  size_t ids = 0;
  for (const UncertainObject2D& obj : data) {
    EXPECT_EQ(obj.id(), static_cast<ObjectId>(ids++));
    EXPECT_GT(obj.Area(), 0.0);
    double best = 1e18;
    for (double c : centers) {
      best = std::min(best, obj.MinDist({c, c}));
    }
    // 6 stddevs of center noise plus the largest extent.
    EXPECT_LT(best, 6.0 * config.cluster_stddev + config.max_extent)
        << "object " << obj.id() << " is not near any cluster";
  }

  // Deterministic per seed, different across seeds.
  Dataset2D again = datagen::MakeSynthetic2DClustered(config);
  ASSERT_EQ(again.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].MinDist({0.0, 0.0}), again[i].MinDist({0.0, 0.0}));
  }
  config.seed += 1;
  Dataset2D other = datagen::MakeSynthetic2DClustered(config);
  bool all_equal = true;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].MinDist({0.0, 0.0}) != other[i].MinDist({0.0, 0.0})) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);

  // Explicit centers are honored.
  datagen::Synthetic2DClusteredConfig pinned = config;
  pinned.centers = {{100.0, 9000.0}};
  pinned.cluster_stddev = 10.0;
  Dataset2D one_cluster = datagen::MakeSynthetic2DClustered(pinned);
  for (const UncertainObject2D& obj : one_cluster) {
    EXPECT_LT(obj.MinDist({100.0, 9000.0}),
              6.0 * pinned.cluster_stddev + pinned.max_extent);
  }
}

TEST(WorkloadTest, QueryPointsInRange) {
  auto pts = datagen::MakeQueryPoints(500, 3.0, 7.0, 1);
  ASSERT_EQ(pts.size(), 500u);
  for (double p : pts) {
    EXPECT_GE(p, 3.0);
    EXPECT_LT(p, 7.0);
  }
}

TEST(WorkloadTest, ZipfPointsStayInDomainAndAreDeterministic) {
  datagen::ZipfConfig config;
  auto a = datagen::MakeQueryPointsZipf(400, 2.0, 12.0, config, 5);
  auto b = datagen::MakeQueryPointsZipf(400, 2.0, 12.0, config, 5);
  auto c = datagen::MakeQueryPointsZipf(400, 2.0, 12.0, config, 6);
  ASSERT_EQ(a.size(), 400u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (double p : a) {
    EXPECT_GE(p, 2.0);
    EXPECT_LE(p, 12.0);
  }
}

TEST(WorkloadTest, ZipfPointsConcentrateOnTheHotHotspot) {
  // With exponent 1 and 16 hotspots the rank-0 center's weight is
  // 1/H_16 ≈ 0.296 of all draws — far above the uniform 1/16. Attribute
  // each point to its nearest center (the scatter stddev is 1% of the
  // domain, so attribution is essentially exact) and check both the skew
  // and that the tail hotspots still receive queries.
  datagen::ZipfConfig config;
  config.num_hotspots = 16;
  config.exponent = 1.0;
  config.spread_fraction = 0.002;
  const double lo = 0.0, hi = 10000.0;
  const size_t n = 4000;
  auto pts = datagen::MakeQueryPointsZipf(n, lo, hi, config, 77);

  // Centers are the first num_hotspots draws from the same seeded stream.
  Rng rng(77);
  std::vector<double> centers(config.num_hotspots);
  for (double& c : centers) c = rng.Uniform(lo, hi);

  std::vector<size_t> hits(config.num_hotspots, 0);
  for (double p : pts) {
    size_t best = 0;
    for (size_t h = 1; h < centers.size(); ++h) {
      if (std::abs(p - centers[h]) < std::abs(p - centers[best])) best = h;
    }
    ++hits[best];
  }
  const double top = static_cast<double>(hits[0]) / static_cast<double>(n);
  EXPECT_GT(top, 0.2) << "rank-0 hotspot should absorb ~30% of queries";
  EXPECT_LT(top, 0.45);
  size_t touched = 0;
  for (size_t h : hits) touched += h > 0 ? 1 : 0;
  EXPECT_GE(touched, 12u) << "the Zipf tail should still be sampled";
}

TEST(WorkloadTest, Zipf2DPointsStayInDomainAndSkew) {
  datagen::ZipfConfig config;
  config.num_hotspots = 8;
  config.exponent = 1.2;
  config.spread_fraction = 0.002;
  const double lo = 0.0, hi = 1000.0;
  const size_t n = 3000;
  auto pts = datagen::MakeQueryPointsZipf2D(n, lo, hi, config, 21);
  ASSERT_EQ(pts.size(), n);
  for (const Point2& p : pts) {
    EXPECT_GE(p.x, lo);
    EXPECT_LE(p.x, hi);
    EXPECT_GE(p.y, lo);
    EXPECT_LE(p.y, hi);
  }

  Rng rng(21);
  std::vector<Point2> centers(config.num_hotspots);
  for (Point2& c : centers) {
    c.x = rng.Uniform(lo, hi);
    c.y = rng.Uniform(lo, hi);
  }
  std::vector<size_t> hits(config.num_hotspots, 0);
  for (const Point2& p : pts) {
    size_t best = 0;
    double best_d = 1e300;
    for (size_t h = 0; h < centers.size(); ++h) {
      const double dx = p.x - centers[h].x;
      const double dy = p.y - centers[h].y;
      const double d = dx * dx + dy * dy;
      if (d < best_d) {
        best_d = d;
        best = h;
      }
    }
    ++hits[best];
  }
  // Rank 0 carries weight 1/Σ(r+1)^-1.2 ≈ 0.38 at H=8, s=1.2.
  const double top = static_cast<double>(hits[0]) / static_cast<double>(n);
  EXPECT_GT(top, 0.25);
  // Deterministic per seed.
  auto again = datagen::MakeQueryPointsZipf2D(n, lo, hi, config, 21);
  ASSERT_EQ(again.size(), pts.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(pts[i].x, again[i].x);
    EXPECT_EQ(pts[i].y, again[i].y);
  }
}

TEST(WorkloadTest, ZipfExponentZeroDegeneratesToUniformOverHotspots) {
  datagen::ZipfConfig config;
  config.num_hotspots = 4;
  config.exponent = 0.0;
  config.spread_fraction = 0.001;
  const size_t n = 4000;
  auto pts = datagen::MakeQueryPointsZipf(n, 0.0, 1000.0, config, 9);
  Rng rng(9);
  std::vector<double> centers(config.num_hotspots);
  for (double& c : centers) c = rng.Uniform(0.0, 1000.0);
  std::vector<size_t> hits(config.num_hotspots, 0);
  for (double p : pts) {
    size_t best = 0;
    for (size_t h = 1; h < centers.size(); ++h) {
      if (std::abs(p - centers[h]) < std::abs(p - centers[best])) best = h;
    }
    ++hits[best];
  }
  for (size_t h : hits) {
    const double share = static_cast<double>(h) / static_cast<double>(n);
    EXPECT_GT(share, 0.15);  // uniform share is 0.25
    EXPECT_LT(share, 0.35);
  }
}

TEST(WorkloadTest, RunWorkloadAggregates) {
  Dataset data = datagen::MakeUniformScatter(500, 100.0, 1.0, 2);
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(10, 0.0, 100.0, 3);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  datagen::WorkloadResult result = datagen::RunWorkload(exec, queries, opt);
  EXPECT_EQ(result.queries, 10u);
  EXPECT_GT(result.AvgCandidates(), 0.0);
  EXPECT_GE(result.AvgTotalMs(), 0.0);
  EXPECT_GE(result.FractionFinishedAfterVerify(), 0.0);
  EXPECT_LE(result.FractionFinishedAfterVerify(), 1.0);
}

}  // namespace
}  // namespace pverify
