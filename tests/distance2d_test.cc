#include "uncertain/distance2d.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pverify {
namespace {

double kDiskArea(double r) { return 3.14159265358979323846 * r * r; }

TEST(Distance2DTest, QueryAtCircleCenterHasQuadraticCdf) {
  // Uniform disk radius R, query at center: D(r) = r²/R².
  UncertainObject2D obj(1, Circle2{0.0, 0.0, 4.0});
  DistanceDistribution d =
      MakeDistanceDistribution2D(obj, {0.0, 0.0}, /*pieces=*/256);
  EXPECT_DOUBLE_EQ(d.near(), 0.0);
  EXPECT_DOUBLE_EQ(d.far(), 4.0);
  for (double r : {0.5, 1.0, 2.0, 3.0, 3.9}) {
    EXPECT_NEAR(d.Cdf(r), r * r / 16.0, 5e-3) << "r=" << r;
  }
}

TEST(Distance2DTest, RectangleNearFar) {
  UncertainObject2D obj(2, Rect2{1.0, 1.0, 3.0, 2.0});
  Point2 q{0.0, 0.0};
  DistanceDistribution d = MakeDistanceDistribution2D(obj, q);
  EXPECT_NEAR(d.near(), std::hypot(1.0, 1.0), 1e-12);
  EXPECT_NEAR(d.far(), std::hypot(3.0, 2.0), 1e-12);
  EXPECT_NEAR(d.ProbIn(d.near(), d.far()), 1.0, 1e-9);
}

TEST(Distance2DTest, QueryInsideRectangle) {
  UncertainObject2D obj(3, Rect2{0.0, 0.0, 4.0, 4.0});
  Point2 q{1.0, 1.0};
  DistanceDistribution d = MakeDistanceDistribution2D(obj, q, 128);
  EXPECT_DOUBLE_EQ(d.near(), 0.0);
  EXPECT_NEAR(d.far(), std::hypot(3.0, 3.0), 1e-12);
  // Small r: the disk fits fully inside → D(r) = πr²/area.
  EXPECT_NEAR(d.Cdf(0.5), kDiskArea(0.5) / 16.0, 5e-3);
  EXPECT_NEAR(d.Cdf(1.0), kDiskArea(1.0) / 16.0, 2e-2);
}

TEST(Distance2DTest, CdfMatchesExactAreaRatio) {
  UncertainObject2D obj(4, Rect2{2.0, -1.0, 6.0, 3.0});
  Point2 q{0.0, 0.0};
  DistanceDistribution d = MakeDistanceDistribution2D(obj, q, 512);
  for (double r : {2.5, 3.0, 4.0, 5.0, 6.0}) {
    double exact = obj.AreaWithinDistance(q, r) / obj.Area();
    EXPECT_NEAR(d.Cdf(r), exact, 5e-3) << "r=" << r;
  }
}

TEST(Distance2DTest, MonotoneCdfForRandomObjects) {
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    UncertainObject2D obj =
        (t % 2 == 0)
            ? UncertainObject2D(t, Circle2{rng.Uniform(-5, 5),
                                           rng.Uniform(-5, 5),
                                           rng.Uniform(0.5, 3.0)})
            : UncertainObject2D(
                  t, Rect2{rng.Uniform(-5, 0), rng.Uniform(-5, 0),
                           rng.Uniform(0.5, 5), rng.Uniform(0.5, 5)});
    Point2 q{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    DistanceDistribution d = MakeDistanceDistribution2D(obj, q, 64);
    double prev = -1.0;
    for (int i = 0; i <= 30; ++i) {
      double r = d.near() + (d.far() - d.near()) * i / 30.0;
      double c = d.Cdf(r);
      EXPECT_GE(c, prev - 1e-12);
      EXPECT_LE(c, 1.0 + 1e-12);
      prev = c;
    }
    EXPECT_NEAR(d.Cdf(d.far()), 1.0, 1e-9);
  }
}

// The radial-cdf build now evaluates all grid radii through the batched
// AreaWithinDistanceSorted scan; pin it bit-identical to per-radius calls,
// and pin the Into variant (with and without an external cuts workspace)
// bit-identical to MakeDistanceDistribution2D.
TEST(Distance2DTest, BatchedRadialScanBitIdenticalToPerRadius) {
  Rng rng(21);
  std::vector<double> cuts;
  for (int t = 0; t < 12; ++t) {
    UncertainObject2D obj =
        (t % 2 == 0)
            ? UncertainObject2D(t, Circle2{rng.Uniform(-5, 5),
                                           rng.Uniform(-5, 5),
                                           rng.Uniform(0.5, 3.0)})
            : UncertainObject2D(
                  t, Rect2{rng.Uniform(-5, 0), rng.Uniform(-5, 0),
                           rng.Uniform(0.5, 5), rng.Uniform(0.5, 5)});
    Point2 q{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const double near = obj.MinDist(q);
    const double far = obj.MaxDist(q);
    std::vector<double> rs;
    for (int i = 0; i <= 40; ++i) rs.push_back(near + (far - near) * i / 40);
    std::vector<double> got(rs.size(), -1.0);
    obj.AreaWithinDistanceSorted(q, rs.data(), rs.size(), got.data(), cuts);
    for (size_t i = 0; i < rs.size(); ++i) {
      EXPECT_EQ(got[i], obj.AreaWithinDistance(q, rs[i]))
          << "t=" << t << " r=" << rs[i];
    }
  }
}

TEST(Distance2DTest, IntoVariantBitIdenticalWithAndWithoutCutsBuffer) {
  Rng rng(23);
  std::vector<double> breaks, values, cuts;
  for (int t = 0; t < 12; ++t) {
    UncertainObject2D obj =
        (t % 2 == 0)
            ? UncertainObject2D(t, Circle2{rng.Uniform(-5, 5),
                                           rng.Uniform(-5, 5),
                                           rng.Uniform(0.5, 3.0)})
            : UncertainObject2D(
                  t, Rect2{rng.Uniform(-5, 0), rng.Uniform(-5, 0),
                           rng.Uniform(0.5, 5), rng.Uniform(0.5, 5)});
    Point2 q{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const int pieces = 1 + (t % 2 == 0 ? 63 : 32);
    DistanceDistribution expect = MakeDistanceDistribution2D(obj, q, pieces);
    DistanceDistribution with_cuts, without_cuts;
    MakeDistanceDistribution2DInto(obj, q, pieces, &with_cuts, breaks, values,
                                   &cuts);
    MakeDistanceDistribution2DInto(obj, q, pieces, &without_cuts, breaks,
                                   values);
    for (const DistanceDistribution* got : {&with_cuts, &without_cuts}) {
      ASSERT_EQ(got->pdf().breaks().size(), expect.pdf().breaks().size());
      for (size_t i = 0; i < expect.pdf().breaks().size(); ++i) {
        EXPECT_EQ(got->pdf().breaks()[i], expect.pdf().breaks()[i]);
      }
      ASSERT_EQ(got->pdf().values().size(), expect.pdf().values().size());
      for (size_t i = 0; i < expect.pdf().values().size(); ++i) {
        EXPECT_EQ(got->pdf().values()[i], expect.pdf().values()[i]);
      }
    }
  }
}

TEST(Distance2DTest, DegenerateRegionRejected) {
  UncertainObject2D obj(5, Rect2{1.0, 1.0, 1.0, 2.0});  // zero width
  EXPECT_THROW(MakeDistanceDistribution2D(obj, {0.0, 0.0}),
               std::logic_error);
}

}  // namespace
}  // namespace pverify
