// Wire-format and codec tests: randomized round-trip properties over every
// serializable QueryKind and QueryResult shape (doubles must round-trip
// bit-identically), plus the malformed-frame matrix — truncated headers,
// bad magic/version/type, oversized bodies, unknown kinds, truncated and
// trailing bytes all throw WireError instead of reading wild.
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/wire.h"

namespace pverify {
namespace net {
namespace {

// Bit-exact double comparison (0.0 vs -0.0 and NaN payloads count).
void ExpectBits(double expected, double actual, const std::string& what) {
  uint64_t e, a;
  std::memcpy(&e, &expected, sizeof(e));
  std::memcpy(&a, &actual, sizeof(a));
  EXPECT_EQ(e, a) << what << ": " << expected << " vs " << actual;
}

QueryOptions RandomOptions(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  QueryOptions o;
  o.params.threshold = unit(rng);
  o.params.tolerance = unit(rng) * 0.1;
  o.strategy = static_cast<Strategy>(rng() % 4);
  o.integration.gauss_points = static_cast<int>(rng() % 64) + 1;
  o.integration.splits_per_subregion = static_cast<int>(rng() % 8) + 1;
  o.refine_order = static_cast<RefineOrder>(rng() % 2);
  o.monte_carlo.samples = static_cast<int>(rng() % 10000) + 1;
  o.monte_carlo.seed = rng();
  o.report_probabilities = (rng() % 2) == 0;
  return o;
}

void ExpectOptionsEqual(const QueryOptions& e, const QueryOptions& g,
                        const std::string& what) {
  ExpectBits(e.params.threshold, g.params.threshold, what + " threshold");
  ExpectBits(e.params.tolerance, g.params.tolerance, what + " tolerance");
  EXPECT_EQ(e.strategy, g.strategy) << what;
  EXPECT_EQ(e.integration.gauss_points, g.integration.gauss_points) << what;
  EXPECT_EQ(e.integration.splits_per_subregion,
            g.integration.splits_per_subregion)
      << what;
  EXPECT_EQ(e.refine_order, g.refine_order) << what;
  EXPECT_EQ(e.monte_carlo.samples, g.monte_carlo.samples) << what;
  EXPECT_EQ(e.monte_carlo.seed, g.monte_carlo.seed) << what;
  EXPECT_EQ(e.report_probabilities, g.report_probabilities) << what;
}

QueryRequest RoundTrip(const QueryRequest& request) {
  WireWriter w;
  EncodeRequest(request, w);
  WireReader r(w.bytes().data(), w.size());
  QueryRequest decoded = DecodeRequest(r);
  r.ExpectEnd();
  return decoded;
}

TEST(NetCodecTest, PointRequestRoundTripsBitIdentical) {
  std::mt19937_64 rng(101);
  std::uniform_real_distribution<double> coord(-1e6, 1e6);
  for (int i = 0; i < 50; ++i) {
    QueryOptions opt = RandomOptions(rng);
    double q = coord(rng);
    QueryRequest decoded = RoundTrip(PointQuery{q, opt});
    ASSERT_EQ(decoded.kind(), QueryKind::kPoint);
    const PointQuery& p = std::get<PointQuery>(decoded.query);
    ExpectBits(q, p.q, "q");
    ExpectOptionsEqual(opt, p.options, "point options");
  }
}

TEST(NetCodecTest, MinMaxRequestsRoundTrip) {
  std::mt19937_64 rng(102);
  QueryOptions opt = RandomOptions(rng);
  QueryRequest min_decoded = RoundTrip(MinQuery{opt});
  ASSERT_EQ(min_decoded.kind(), QueryKind::kMin);
  ExpectOptionsEqual(opt, std::get<MinQuery>(min_decoded.query).options,
                     "min options");
  QueryRequest max_decoded = RoundTrip(MaxQuery{opt});
  ASSERT_EQ(max_decoded.kind(), QueryKind::kMax);
  ExpectOptionsEqual(opt, std::get<MaxQuery>(max_decoded.query).options,
                     "max options");
}

TEST(NetCodecTest, KnnRequestRoundTrips) {
  std::mt19937_64 rng(103);
  std::uniform_real_distribution<double> coord(-1e6, 1e6);
  for (int i = 0; i < 50; ++i) {
    QueryOptions opt = RandomOptions(rng);
    double q = coord(rng);
    int k = static_cast<int>(rng() % 16) + 1;
    QueryRequest decoded = RoundTrip(KnnQuery{q, k, opt});
    ASSERT_EQ(decoded.kind(), QueryKind::kKnn);
    const KnnQuery& knn = std::get<KnnQuery>(decoded.query);
    ExpectBits(q, knn.q, "q");
    EXPECT_EQ(k, knn.k);
    ExpectOptionsEqual(opt, knn.options, "knn options");
  }
}

TEST(NetCodecTest, TwoDimensionalRequestsRoundTrip) {
  std::mt19937_64 rng(104);
  std::uniform_real_distribution<double> coord(-1e6, 1e6);
  for (int i = 0; i < 50; ++i) {
    QueryOptions opt = RandomOptions(rng);
    Point2 q{coord(rng), coord(rng)};
    QueryRequest point = RoundTrip(Point2DQuery{q, opt});
    ASSERT_EQ(point.kind(), QueryKind::kPoint2D);
    const Point2DQuery& p = std::get<Point2DQuery>(point.query);
    ExpectBits(q.x, p.q.x, "x");
    ExpectBits(q.y, p.q.y, "y");
    ExpectOptionsEqual(opt, p.options, "2d options");

    int k = static_cast<int>(rng() % 16) + 1;
    QueryRequest knn = RoundTrip(Knn2DQuery{q, k, opt});
    ASSERT_EQ(knn.kind(), QueryKind::kKnn2D);
    const Knn2DQuery& kq = std::get<Knn2DQuery>(knn.query);
    ExpectBits(q.x, kq.q.x, "knn x");
    ExpectBits(q.y, kq.q.y, "knn y");
    EXPECT_EQ(k, kq.k);
  }
}

QueryResult RandomResult(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> ms(0.0, 50.0);
  QueryResult result;
  size_t ids = rng() % 8;
  for (size_t i = 0; i < ids; ++i) {
    result.ids.push_back(static_cast<ObjectId>(rng() % 100000));
  }
  result.stats.filter_ms = ms(rng);
  result.stats.init_ms = ms(rng);
  result.stats.verify_ms = ms(rng);
  result.stats.refine_ms = ms(rng);
  result.stats.total_ms = ms(rng);
  result.stats.dataset_size = rng() % 100000;
  result.stats.candidates = rng() % 200;
  result.stats.num_subregions = rng() % 400;
  result.stats.verification.init_ms = ms(rng);
  size_t stages = rng() % 4;
  for (size_t i = 0; i < stages; ++i) {
    StageStats st;
    st.name = std::string("stage") + std::to_string(i);
    st.ms = ms(rng);
    st.unknown_after = rng() % 100;
    st.satisfy_after = rng() % 100;
    st.fail_after = rng() % 100;
    result.stats.verification.stages.push_back(st);
  }
  result.stats.verification.unknown_after = rng() % 100;
  result.stats.unknown_after_verification = rng() % 100;
  result.stats.finished_after_verification = (rng() % 2) == 0;
  result.stats.refined_candidates = rng() % 100;
  result.stats.subregion_integrations = rng() % 1000;
  result.stats.served_from_cache = (rng() % 2) == 0;
  size_t entries = rng() % 6;
  for (size_t i = 0; i < entries; ++i) {
    AnswerEntry e;
    e.id = static_cast<ObjectId>(rng() % 100000);
    e.bound.lower = unit(rng);
    e.bound.upper = e.bound.lower + unit(rng) * (1.0 - e.bound.lower);
    result.candidate_probabilities.push_back(e);
  }
  if (rng() % 2 == 0) {
    CknnAnswer knn;
    size_t n = rng() % 5;
    for (size_t i = 0; i < n; ++i) {
      knn.ids.push_back(static_cast<ObjectId>(rng() % 100000));
      ProbabilityBound b;
      b.lower = unit(rng);
      b.upper = b.lower + unit(rng) * (1.0 - b.lower);
      knn.bounds.push_back(b);
    }
    knn.pruned_by_bound = rng() % 50;
    knn.early_decided = rng() % 50;
    knn.segments_evaluated = rng() % 500;
    result.knn = std::move(knn);
  }
  return result;
}

void ExpectResultsBitEqual(const QueryResult& e, const QueryResult& g) {
  EXPECT_EQ(e.ids, g.ids);
  ExpectBits(e.stats.filter_ms, g.stats.filter_ms, "filter_ms");
  ExpectBits(e.stats.init_ms, g.stats.init_ms, "init_ms");
  ExpectBits(e.stats.verify_ms, g.stats.verify_ms, "verify_ms");
  ExpectBits(e.stats.refine_ms, g.stats.refine_ms, "refine_ms");
  ExpectBits(e.stats.total_ms, g.stats.total_ms, "total_ms");
  EXPECT_EQ(e.stats.dataset_size, g.stats.dataset_size);
  EXPECT_EQ(e.stats.candidates, g.stats.candidates);
  EXPECT_EQ(e.stats.num_subregions, g.stats.num_subregions);
  ExpectBits(e.stats.verification.init_ms, g.stats.verification.init_ms,
             "verification init_ms");
  ASSERT_EQ(e.stats.verification.stages.size(),
            g.stats.verification.stages.size());
  for (size_t i = 0; i < e.stats.verification.stages.size(); ++i) {
    const StageStats& es = e.stats.verification.stages[i];
    const StageStats& gs = g.stats.verification.stages[i];
    EXPECT_EQ(es.name, gs.name);
    ExpectBits(es.ms, gs.ms, "stage ms");
    EXPECT_EQ(es.unknown_after, gs.unknown_after);
    EXPECT_EQ(es.satisfy_after, gs.satisfy_after);
    EXPECT_EQ(es.fail_after, gs.fail_after);
  }
  EXPECT_EQ(e.stats.verification.unknown_after,
            g.stats.verification.unknown_after);
  EXPECT_EQ(e.stats.unknown_after_verification,
            g.stats.unknown_after_verification);
  EXPECT_EQ(e.stats.finished_after_verification,
            g.stats.finished_after_verification);
  EXPECT_EQ(e.stats.refined_candidates, g.stats.refined_candidates);
  EXPECT_EQ(e.stats.subregion_integrations, g.stats.subregion_integrations);
  EXPECT_EQ(e.stats.served_from_cache, g.stats.served_from_cache);
  ASSERT_EQ(e.candidate_probabilities.size(),
            g.candidate_probabilities.size());
  for (size_t i = 0; i < e.candidate_probabilities.size(); ++i) {
    EXPECT_EQ(e.candidate_probabilities[i].id,
              g.candidate_probabilities[i].id);
    ExpectBits(e.candidate_probabilities[i].bound.lower,
               g.candidate_probabilities[i].bound.lower, "entry lower");
    ExpectBits(e.candidate_probabilities[i].bound.upper,
               g.candidate_probabilities[i].bound.upper, "entry upper");
  }
  ASSERT_EQ(e.knn.has_value(), g.knn.has_value());
  if (e.knn.has_value()) {
    EXPECT_EQ(e.knn->ids, g.knn->ids);
    ASSERT_EQ(e.knn->bounds.size(), g.knn->bounds.size());
    for (size_t i = 0; i < e.knn->bounds.size(); ++i) {
      ExpectBits(e.knn->bounds[i].lower, g.knn->bounds[i].lower,
                 "knn lower");
      ExpectBits(e.knn->bounds[i].upper, g.knn->bounds[i].upper,
                 "knn upper");
    }
    EXPECT_EQ(e.knn->pruned_by_bound, g.knn->pruned_by_bound);
    EXPECT_EQ(e.knn->early_decided, g.knn->early_decided);
    EXPECT_EQ(e.knn->segments_evaluated, g.knn->segments_evaluated);
  }
}

TEST(NetCodecTest, ResultRoundTripsBitIdentical) {
  std::mt19937_64 rng(105);
  for (int i = 0; i < 100; ++i) {
    QueryResult original = RandomResult(rng);
    WireWriter w;
    EncodeResult(original, w);
    WireReader r(w.bytes().data(), w.size());
    QueryResult decoded = DecodeResult(r);
    r.ExpectEnd();
    ExpectResultsBitEqual(original, decoded);
  }
}

TEST(NetCodecTest, CandidatesRequestsAreRejectedBothWays) {
  QueryRequest request = CandidatesQuery(CandidateSet{}, QueryOptions{});
  WireWriter w;
  EXPECT_THROW(EncodeRequest(request, w), WireError);

  WireWriter raw;
  raw.U8(static_cast<uint8_t>(QueryKind::kCandidates));
  WireReader r(raw.bytes().data(), raw.size());
  EXPECT_THROW(DecodeRequest(r), WireError);
}

// ------------------------------------------------------------ frame header

TEST(NetFrameTest, HeaderRoundTrips) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kResponse, 0xdeadbeefcafe1234ull, 77, buf);
  FrameHeader h = DecodeFrameHeader(buf, kDefaultMaxBodyBytes);
  EXPECT_EQ(h.version, kWireVersion);
  EXPECT_EQ(h.type, MessageType::kResponse);
  EXPECT_EQ(h.request_id, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(h.body_bytes, 77u);
}

TEST(NetFrameTest, BadMagicIsRejected) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kRequest, 1, 0, buf);
  buf[0] ^= 0xff;
  EXPECT_THROW(DecodeFrameHeader(buf, kDefaultMaxBodyBytes), WireError);
}

TEST(NetFrameTest, BadVersionIsRejected) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kRequest, 1, 0, buf);
  buf[4] = 99;
  EXPECT_THROW(DecodeFrameHeader(buf, kDefaultMaxBodyBytes), WireError);
}

TEST(NetFrameTest, UnknownTypeIsRejected) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kRequest, 1, 0, buf);
  buf[6] = 9;
  EXPECT_THROW(DecodeFrameHeader(buf, kDefaultMaxBodyBytes), WireError);
}

TEST(NetFrameTest, OversizedBodyIsRejected) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kRequest, 1, 4096, buf);
  EXPECT_THROW(DecodeFrameHeader(buf, /*max_body_bytes=*/1024), WireError);
  // The same header passes under the default cap: the cap is the policy,
  // not the layout.
  EXPECT_EQ(DecodeFrameHeader(buf, kDefaultMaxBodyBytes).body_bytes, 4096u);
}

// ------------------------------------------------------- malformed bodies

TEST(NetCodecTest, UnknownKindByteIsRejected) {
  WireWriter w;
  w.U8(200);
  WireReader r(w.bytes().data(), w.size());
  EXPECT_THROW(DecodeRequest(r), WireError);
}

TEST(NetCodecTest, TruncatedBodyIsRejected) {
  WireWriter w;
  EncodeRequest(QueryRequest(PointQuery{1.5, QueryOptions{}}), w);
  // Every proper prefix must throw, never read past the end.
  for (size_t len = 0; len < w.size(); ++len) {
    WireReader r(w.bytes().data(), len);
    EXPECT_THROW(
        {
          QueryRequest decoded = DecodeRequest(r);
          r.ExpectEnd();
        },
        WireError)
        << "prefix length " << len;
  }
}

TEST(NetCodecTest, TrailingBytesAreRejected) {
  WireWriter w;
  EncodeRequest(QueryRequest(PointQuery{1.5, QueryOptions{}}), w);
  w.U8(0);  // one stray byte after a valid request
  WireReader r(w.bytes().data(), w.size());
  QueryRequest decoded = DecodeRequest(r);
  EXPECT_THROW(r.ExpectEnd(), WireError);
}

TEST(NetCodecTest, OutOfRangeEnumsAreRejected) {
  WireWriter w;
  EncodeRequest(QueryRequest(PointQuery{1.5, QueryOptions{}}), w);
  // Corrupt the strategy byte (first byte after kind + q + two F64 params).
  std::vector<uint8_t> bytes = w.bytes();
  bytes[1 + 8 + 8 + 8] = 200;
  WireReader r(bytes.data(), bytes.size());
  EXPECT_THROW(DecodeRequest(r), WireError);
}

TEST(NetCodecTest, NonPositiveKIsRejected) {
  WireWriter w;
  EncodeRequest(QueryRequest(KnnQuery{1.0, 3, QueryOptions{}}), w);
  std::vector<uint8_t> bytes = w.bytes();
  // k sits right after the kind byte and the query coordinate.
  const size_t k_offset = 1 + 8;
  bytes[k_offset] = 0;
  bytes[k_offset + 1] = 0;
  bytes[k_offset + 2] = 0;
  bytes[k_offset + 3] = 0;
  WireReader r(bytes.data(), bytes.size());
  EXPECT_THROW(DecodeRequest(r), WireError);
}

TEST(NetCodecTest, HostileCountFieldFailsBeforeAllocation) {
  // A result body claiming 4 billion ids in a 16-byte message must be
  // rejected by the count check, not die trying to reserve.
  WireWriter w;
  w.U32(0xffffffffu);
  w.U64(0);
  WireReader r(w.bytes().data(), w.size());
  EXPECT_THROW(DecodeResult(r), WireError);
}

TEST(NetCodecTest, BooleanBytesAreStrict) {
  WireWriter w;
  EncodeResult(QueryResult{}, w);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.back() = 2;  // the trailing knn-presence flag
  WireReader r(bytes.data(), bytes.size());
  EXPECT_THROW(DecodeResult(r), WireError);
}

TEST(NetCodecTest, SpecialDoublesRoundTrip) {
  // -0.0, infinities and NaN payloads all travel as raw bits.
  const double specials[] = {-0.0, std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min()};
  for (double v : specials) {
    WireWriter w;
    w.F64(v);
    WireReader r(w.bytes().data(), w.size());
    ExpectBits(v, r.F64(), "special double");
  }
}

// ------------------------------------------------------ version 2 layers

TEST(NetChecksumTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector.
  const char kNine[] = "123456789";
  EXPECT_EQ(Crc32(kNine, 9), 0xCBF43926u);
  // Chaining across splits equals one pass over the whole buffer.
  uint32_t chained = Crc32(kNine, 4);
  chained = Crc32(kNine + 4, 5, chained);
  EXPECT_EQ(chained, 0xCBF43926u);
  // Empty input is the identity.
  EXPECT_EQ(Crc32(kNine, 0), 0u);
}

TEST(NetExtensionsTest, DeadlineRoundTrips) {
  RequestExtensions ext;
  ext.deadline_ms = 1234;
  WireWriter w;
  EncodeRequestExtensions(ext, w);
  WireReader r(w.bytes().data(), w.size());
  EXPECT_EQ(DecodeRequestExtensions(r).deadline_ms, 1234u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(NetExtensionsTest, UnknownTrailingExtensionBytesAreSkipped) {
  // A future peer appends fields we do not know: ext_bytes covers them and
  // the decoder must step over without choking — and still leave the
  // request payload readable.
  WireWriter w;
  w.U32(12);    // ext_bytes: deadline + 8 unknown bytes
  w.U32(77);    // deadline_ms
  w.U64(0xDEADBEEFCAFEF00Dull);  // unknown extension payload
  w.U32(4242);  // first field of the request body proper
  WireReader r(w.bytes().data(), w.size());
  EXPECT_EQ(DecodeRequestExtensions(r).deadline_ms, 77u);
  EXPECT_EQ(r.U32(), 4242u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(NetExtensionsTest, OverrunningExtensionBlockIsRejected) {
  WireWriter w;
  w.U32(64);  // claims 64 extension bytes ...
  w.U32(5);   // ... but only 4 follow
  WireReader r(w.bytes().data(), w.size());
  EXPECT_THROW(DecodeRequestExtensions(r), WireError);
}

TEST(NetErrorBodyTest, TypedCodeRoundTripsInVersion2) {
  for (ErrorCode code :
       {ErrorCode::kGeneric, ErrorCode::kOverloaded,
        ErrorCode::kDeadlineExceeded, ErrorCode::kTooLarge,
        ErrorCode::kShuttingDown}) {
    WireWriter w;
    EncodeErrorBody(2, code, "something happened", w);
    WireReader r(w.bytes().data(), w.size());
    DecodedError err = DecodeErrorBody(2, r, kDefaultMaxBodyBytes);
    EXPECT_EQ(err.code, code);
    EXPECT_EQ(err.message, "something happened");
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(NetErrorBodyTest, Version1BodiesAreStringOnlyAndDecodeGeneric) {
  WireWriter w;
  EncodeErrorBody(1, ErrorCode::kOverloaded, "v1 peers see only this", w);
  // v1 layout: a bare string — no leading code halfword.
  WireReader raw(w.bytes().data(), w.size());
  EXPECT_EQ(raw.String(kDefaultMaxBodyBytes), "v1 peers see only this");

  WireReader r(w.bytes().data(), w.size());
  DecodedError err = DecodeErrorBody(1, r, kDefaultMaxBodyBytes);
  EXPECT_EQ(err.code, ErrorCode::kGeneric);
  EXPECT_EQ(err.message, "v1 peers see only this");
}

TEST(NetFrameTest, HeaderCarriesTheRequestedVersion) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kResponse, 9, 100, buf, /*version=*/1);
  FrameHeader header = DecodeFrameHeader(buf, kDefaultMaxBodyBytes);
  EXPECT_EQ(header.version, 1u);
  EXPECT_EQ(header.type, MessageType::kResponse);
  EXPECT_EQ(header.request_id, 9u);
  EXPECT_EQ(header.body_bytes, 100u);

  EncodeFrameHeader(MessageType::kResponse, 9, 100, buf);  // default = v2
  EXPECT_EQ(DecodeFrameHeader(buf, kDefaultMaxBodyBytes).version,
            kWireVersion);
}

}  // namespace
}  // namespace net
}  // namespace pverify
