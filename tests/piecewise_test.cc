#include "common/piecewise.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pverify {
namespace {

TEST(StepFunctionTest, ConstantBasics) {
  StepFunction f = StepFunction::Constant(1.0, 3.0, 0.5);
  EXPECT_EQ(f.num_pieces(), 1u);
  EXPECT_DOUBLE_EQ(f.support_lo(), 1.0);
  EXPECT_DOUBLE_EQ(f.support_hi(), 3.0);
  EXPECT_DOUBLE_EQ(f.Value(2.0), 0.5);
  EXPECT_DOUBLE_EQ(f.Value(1.0), 0.5);
  EXPECT_DOUBLE_EQ(f.Value(3.0), 0.5);
  EXPECT_DOUBLE_EQ(f.Value(0.999), 0.0);
  EXPECT_DOUBLE_EQ(f.Value(3.001), 0.0);
  EXPECT_DOUBLE_EQ(f.TotalMass(), 1.0);
}

TEST(StepFunctionTest, MultiPieceValueAndIntegral) {
  StepFunction f({0.0, 1.0, 2.0, 4.0}, {1.0, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(f.Value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.Value(1.0), 0.5);  // right-continuous at breakpoints
  EXPECT_DOUBLE_EQ(f.Value(1.5), 0.5);
  EXPECT_DOUBLE_EQ(f.Value(3.0), 0.25);
  EXPECT_DOUBLE_EQ(f.IntegralTo(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.IntegralTo(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.IntegralTo(2.0), 1.5);
  EXPECT_DOUBLE_EQ(f.IntegralTo(3.0), 1.75);
  EXPECT_DOUBLE_EQ(f.IntegralTo(4.0), 2.0);
  EXPECT_DOUBLE_EQ(f.IntegralTo(100.0), 2.0);
  EXPECT_DOUBLE_EQ(f.IntegralTo(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.TotalMass(), 2.0);
}

TEST(StepFunctionTest, IntegralBetween) {
  StepFunction f({0.0, 2.0, 4.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(f.IntegralBetween(1.0, 3.0), 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(f.IntegralBetween(3.0, 1.0), 0.0);  // reversed
  EXPECT_DOUBLE_EQ(f.IntegralBetween(-10.0, 10.0), 6.0);
  EXPECT_DOUBLE_EQ(f.IntegralBetween(2.0, 2.0), 0.0);
}

TEST(StepFunctionTest, ConstructionValidation) {
  EXPECT_THROW(StepFunction({1.0, 1.0}, {2.0}), std::logic_error);
  EXPECT_THROW(StepFunction({2.0, 1.0}, {2.0}), std::logic_error);
  EXPECT_THROW(StepFunction({0.0, 1.0}, {-1.0}), std::logic_error);
  EXPECT_THROW(StepFunction({0.0, 1.0, 2.0}, {1.0}), std::logic_error);
  EXPECT_THROW(StepFunction({0.0}, {}), std::logic_error);
}

TEST(StepFunctionTest, ZeroHeightPiecesAllowed) {
  StepFunction f({0.0, 1.0, 2.0, 3.0}, {1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(f.Value(1.5), 0.0);
  EXPECT_DOUBLE_EQ(f.IntegralTo(3.0), 2.0);
  EXPECT_DOUBLE_EQ(f.IntegralBetween(1.0, 2.0), 0.0);
}

TEST(StepFunctionTest, InverseIntegralBasics) {
  StepFunction f = StepFunction::Constant(0.0, 2.0, 0.5);  // mass 1
  EXPECT_DOUBLE_EQ(f.InverseIntegral(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.InverseIntegral(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.InverseIntegral(1.0), 2.0);
}

TEST(StepFunctionTest, InverseIntegralSkipsZeroPieces) {
  StepFunction f({0.0, 1.0, 2.0, 3.0}, {0.5, 0.0, 0.5});
  // Mass 0.5 accumulates exactly at x = 1; the inverse must skip the hole.
  double x = f.InverseIntegral(0.5);
  EXPECT_GE(x, 1.0);
  EXPECT_LE(x, 2.0);
  EXPECT_NEAR(f.InverseIntegral(0.75), 2.5, 1e-12);
}

TEST(StepFunctionTest, ScaledAndNormalized) {
  StepFunction f({0.0, 1.0, 3.0}, {2.0, 1.0});  // mass 4
  StepFunction g = f.Scaled(0.5);
  EXPECT_DOUBLE_EQ(g.TotalMass(), 2.0);
  StepFunction n = f.Normalized();
  EXPECT_DOUBLE_EQ(n.TotalMass(), 1.0);
  EXPECT_DOUBLE_EQ(n.Value(0.5), 0.5);
  EXPECT_THROW(f.Scaled(-1.0), std::logic_error);
}

TEST(StepFunctionTest, NormalizeZeroMassThrows) {
  StepFunction f({0.0, 1.0}, {0.0});
  EXPECT_THROW(f.Normalized(), std::logic_error);
}

TEST(StepFunctionTest, EmptyFunction) {
  StepFunction f;
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.Value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.IntegralTo(1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.TotalMass(), 0.0);
}

TEST(SortedUniqueTest, RemovesNearDuplicates) {
  std::vector<double> xs = {3.0, 1.0, 1.0 + 1e-15, 2.0, 3.0, 1.0};
  std::vector<double> out = SortedUnique(xs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(MergeBreakpointsTest, MergesSortedLists) {
  std::vector<double> a = {0.0, 1.0, 2.0};
  std::vector<double> b = {0.5, 1.0, 3.0};
  std::vector<double> out = MergeBreakpoints(a, b);
  std::vector<double> expect = {0.0, 0.5, 1.0, 2.0, 3.0};
  ASSERT_EQ(out.size(), expect.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i], expect[i]);
}

// Property sweep: random step functions keep integral consistency and
// inverse-integral round trips.
class StepFunctionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StepFunctionPropertyTest, IntegralConsistency) {
  Rng rng(GetParam());
  const int pieces = 1 + static_cast<int>(rng.UniformInt(0, 19));
  std::vector<double> breaks = {0.0};
  std::vector<double> values;
  for (int i = 0; i < pieces; ++i) {
    breaks.push_back(breaks.back() + rng.Uniform(0.01, 2.0));
    values.push_back(rng.Uniform(0.0, 3.0));
  }
  StepFunction f(breaks, values);

  // The cdf is non-decreasing and matches manual accumulation.
  double prev = -1.0;
  double manual = 0.0;
  for (int i = 0; i < pieces; ++i) {
    double x = 0.5 * (breaks[i] + breaks[i + 1]);
    double I = f.IntegralTo(x);
    EXPECT_GE(I, prev);
    prev = I;
    manual += values[i] * (breaks[i + 1] - breaks[i]);
  }
  EXPECT_NEAR(f.TotalMass(), manual, 1e-12 * (1.0 + manual));

  // Inverse round trip at mass quantiles.
  if (f.TotalMass() > 0.0) {
    for (double frac : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      double p = frac * f.TotalMass();
      double x = f.InverseIntegral(p);
      EXPECT_NEAR(f.IntegralTo(x), p, 1e-9 * (1.0 + f.TotalMass()));
    }
  }
}

TEST_P(StepFunctionPropertyTest, AdditivityOfIntegralBetween) {
  Rng rng(GetParam() + 1000);
  StepFunction f({0.0, rng.Uniform(0.5, 1.0), 2.0, rng.Uniform(2.5, 3.0)},
                 {rng.Uniform(0.0, 2.0), rng.Uniform(0.0, 2.0),
                  rng.Uniform(0.0, 2.0)});
  double a = rng.Uniform(-0.5, 3.5);
  double b = rng.Uniform(-0.5, 3.5);
  double c = rng.Uniform(-0.5, 3.5);
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  EXPECT_NEAR(f.IntegralBetween(a, c),
              f.IntegralBetween(a, b) + f.IntegralBetween(b, c), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace pverify
