// Paper-fidelity tests: reconstructs the worked example of Fig. 7 (§IV) —
// three distance pdfs over five subregions — with every number the paper
// states: s_11 = 0.3, s_22 = 0.3, s_31 = 0, s_15 = 0.2 (so p_1.u = 0.8 by
// Lemma 1), c_1 = 1 (so q_11.l = 1), q_23.l = (1 − 0.5)/3 ≈ 0.167, and
// s_35 = 0.3 with D_3(e_5) = 0.7.
#include <gtest/gtest.h>

#include "core/basic.h"
#include "core/classifier.h"
#include "core/subregion.h"
#include "core/verifier.h"

namespace pverify {
namespace {

// Distance pdfs consistent with every value quoted for Fig. 7:
//   end-points e_1..e_6 = 0, 1, 2, 3, 4, 5; f_min = 4, f_max = 5.
//   R_1 on [0,5]: masses 0.3 | 0.2 | 0.1 | 0.2 | 0.2 per unit bar
//   R_2 on [1,4]: masses       0.3 | 0.4 | 0.3        (f_2 = f_min = 4)
//   R_3 on [2,5]: masses             0.4 | 0.3 | 0.3
CandidateSet Figure7() {
  std::vector<std::pair<ObjectId, DistanceDistribution>> dists;
  dists.emplace_back(
      1, DistanceDistribution(StepFunction({0, 1, 2, 3, 4, 5},
                                           {0.3, 0.2, 0.1, 0.2, 0.2})));
  dists.emplace_back(
      2, DistanceDistribution(
             StepFunction({1, 2, 3, 4}, {0.3, 0.4, 0.3})));
  dists.emplace_back(
      3, DistanceDistribution(StepFunction({2, 3, 4, 5}, {0.4, 0.3, 0.3})));
  return CandidateSet::FromDistances(std::move(dists));
}

TEST(PaperFig7Test, SubregionLayout) {
  CandidateSet cands = Figure7();
  SubregionTable tbl = SubregionTable::Build(cands);
  // Five subregions S_1..S_5 with the rightmost being [f_min, f_max].
  ASSERT_EQ(tbl.num_subregions(), 5u);
  EXPECT_DOUBLE_EQ(tbl.endpoint(0), 0.0);
  EXPECT_DOUBLE_EQ(tbl.endpoint(1), 1.0);
  EXPECT_DOUBLE_EQ(tbl.endpoint(2), 2.0);
  EXPECT_DOUBLE_EQ(tbl.endpoint(3), 3.0);
  EXPECT_DOUBLE_EQ(tbl.fmin(), 4.0);
  EXPECT_DOUBLE_EQ(tbl.fmax(), 5.0);
}

TEST(PaperFig7Test, QuotedSubregionProbabilities) {
  CandidateSet cands = Figure7();
  SubregionTable tbl = SubregionTable::Build(cands);
  // Candidates arrive sorted by near point: X_1 → 0, X_2 → 1, X_3 → 2.
  EXPECT_NEAR(tbl.s(0, 0), 0.3, 1e-12);  // s_11 = 0.1 + 0.2 = 0.3
  EXPECT_NEAR(tbl.s(1, 1), 0.3, 1e-12);  // s_22 = 0.3
  EXPECT_NEAR(tbl.s(2, 0), 0.0, 1e-12);  // s_31 = 0
  EXPECT_NEAR(tbl.s(0, 4), 0.2, 1e-12);  // s_15 (rightmost) = 0.2
  EXPECT_NEAR(tbl.s(2, 4), 0.3, 1e-12);  // s_35 = 0.3
  EXPECT_NEAR(tbl.cdf(2, 4), 0.7, 1e-12);  // D_3(e_5) = 0.7
  // c_1 = 1, c_3 = 3 (the counts Lemma 2 uses).
  EXPECT_EQ(tbl.count(0), 1);
  EXPECT_EQ(tbl.count(2), 3);
}

TEST(PaperFig7Test, RsLemma1UpperBound) {
  CandidateSet cands = Figure7();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  RsVerifier().Apply(ctx);
  // "The upper bound of the qualification probability of object X_1 ... is
  //  at most 1 − s_15, or 1 − 0.2 = 0.8."
  EXPECT_NEAR(cands[0].bound.upper, 0.8, 1e-12);
}

TEST(PaperFig7Test, LsrLemma2Values) {
  CandidateSet cands = Figure7();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  LsrVerifier().Apply(ctx);
  // "q_11.l ... is equal to 1, since c_1 = 1."
  EXPECT_NEAR(ctx.QLow(0, 0), 1.0, 1e-12);
  // "q_23.l (for X_2 in S_3) is (1−0.5)(1−0)/3 or 0.167": D_1(e_3) = 0.5,
  // D_3(e_3) = 0, c_3 = 3.
  EXPECT_NEAR(tbl.cdf(0, 2), 0.5, 1e-12);
  EXPECT_NEAR(tbl.cdf(2, 2), 0.0, 1e-12);
  EXPECT_NEAR(ctx.QLow(1, 2), (1.0 - 0.5) / 3.0, 1e-9);
}

TEST(PaperFig7Test, BoundsBracketExactProbabilities) {
  CandidateSet cands = Figure7();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  for (const auto& v : MakeDefaultVerifierChain()) v->Apply(ctx);
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  double sum = 0.0;
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_LE(cands[i].bound.lower, exact[i] + 1e-9) << "i=" << i;
    EXPECT_GE(cands[i].bound.upper, exact[i] - 1e-9) << "i=" << i;
    sum += exact[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// The paper's Fig. 4 bound scenarios are covered in classifier_test.cc; the
// Fig. 2 intro example (A 20%, B 41%, C 10%, D 29%) fixes only the
// probabilities, not the geometry, so here we check the C-PNN semantics it
// illustrates: with P=0.30, Δ=0.02 the answer is exactly {B, D}.
TEST(PaperFig2Test, IntroAnswerSemantics) {
  CpnnParams params{0.30, 0.02};
  EXPECT_EQ(Classify({0.20, 0.20}, params), Label::kFail);     // A
  EXPECT_EQ(Classify({0.41, 0.41}, params), Label::kSatisfy);  // B
  EXPECT_EQ(Classify({0.10, 0.10}, params), Label::kFail);     // C
  // D's exact probability is 0.29 < P, but a bound like [0.29, 0.305]
  // satisfies the tolerance condition — the paper's "another answer".
  EXPECT_EQ(Classify({0.29, 0.305}, params), Label::kSatisfy);
}

}  // namespace
}  // namespace pverify
