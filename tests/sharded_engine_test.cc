// Engine-grade tests for the sharded scatter/gather engine: bit-identical
// equivalence with the unsharded QueryEngine across shard counts, sharding
// policies and every QueryKind, plus bounds-pruning, batch-stats and async
// Submit behavior on the sharded path.
#include "engine/sharded_engine.h"

#include <cmath>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "differential_testutil.h"

namespace pverify {
namespace {

QueryOptions OptionsFor(Strategy strategy) {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = strategy;
  opt.report_probabilities = true;
  return opt;
}

std::shared_ptr<const ShardingPolicy> MakePolicy(const std::string& name,
                                                 const Dataset& data) {
  if (name == "hash") return std::make_shared<const HashShardingPolicy>();
  return std::make_shared<const RangeShardingPolicy>(
      RangeShardingPolicy::ForDataset(data));
}

void ExpectIdenticalResult(const QueryResult& expected,
                           const QueryResult& got, const std::string& what) {
  EXPECT_EQ(expected.ids, got.ids) << what;
  ASSERT_EQ(expected.candidate_probabilities.size(),
            got.candidate_probabilities.size())
      << what;
  for (size_t i = 0; i < expected.candidate_probabilities.size(); ++i) {
    const AnswerEntry& e = expected.candidate_probabilities[i];
    const AnswerEntry& g = got.candidate_probabilities[i];
    EXPECT_EQ(e.id, g.id) << what << " entry " << i;
    // Bit-identical, not approximately equal: the sharded scatter/gather
    // must run the exact same arithmetic as the single-engine path.
    EXPECT_EQ(e.bound.lower, g.bound.lower) << what << " entry " << i;
    EXPECT_EQ(e.bound.upper, g.bound.upper) << what << " entry " << i;
  }
  ASSERT_EQ(expected.knn.has_value(), got.knn.has_value()) << what;
  if (expected.knn.has_value()) {
    EXPECT_EQ(expected.knn->ids, got.knn->ids) << what;
    ASSERT_EQ(expected.knn->bounds.size(), got.knn->bounds.size()) << what;
    for (size_t i = 0; i < expected.knn->bounds.size(); ++i) {
      EXPECT_EQ(expected.knn->bounds[i].lower, got.knn->bounds[i].lower)
          << what << " knn bound " << i;
      EXPECT_EQ(expected.knn->bounds[i].upper, got.knn->bounds[i].upper)
          << what << " knn bound " << i;
    }
  }
  EXPECT_EQ(expected.stats.candidates, got.stats.candidates) << what;
}

TEST(ShardedEngineTest, AllKindsBitIdenticalAcrossShardCountsAndPolicies) {
  // Randomized datasets: overlap-heavy uniform scatter and a clustered
  // Long-Beach-like layout, several seeds each.
  std::vector<Dataset> datasets;
  for (uint64_t seed : {3u, 17u, 99u}) {
    datasets.push_back(datagen::MakeUniformScatter(400, 250.0, 2.0, seed));
  }
  {
    datagen::SyntheticConfig config;
    config.count = 400;
    config.domain_hi = 1000.0;
    config.mean_length = 4.0;
    config.num_clusters = 8;
    config.seed = 42;
    datasets.push_back(datagen::MakeSynthetic(config));
  }

  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset& data = datasets[d];
    const double domain_hi = d < 3 ? 250.0 : 1000.0;
    const std::vector<double> points =
        datagen::MakeQueryPoints(4, 0.0, domain_hi, /*seed=*/21 + d);
    const QueryOptions opt = OptionsFor(Strategy::kVR);

    QueryEngine reference(data, EngineOptions{2});

    // The randomized mixed-kind stream plus candidate-set requests whose
    // payloads the reference executor rebuilds per invocation (requests
    // are move-only and consumed on execute).
    std::vector<testutil::RequestFactory> stream =
        testutil::MakeMixedKindStream(points, opt, /*seed=*/5 + d);
    const CpnnExecutor& exec = reference.executor();
    for (double q : points) {
      stream.push_back([&exec, q, opt] {
        FilterResult filtered = exec.Filter(q);
        return QueryRequest(CandidatesQuery(
            CandidateSet::Build1D(exec.dataset(), filtered.candidates, q),
            opt));
      });
    }

    // The sharded variants: 1/2/4-way under both sharding policies. All
    // must answer bit-identically to the unsharded reference.
    std::vector<std::unique_ptr<ShardedQueryEngine>> variants;
    std::vector<testutil::NamedEngine> named;
    for (size_t shards : {1u, 2u, 4u}) {
      for (const char* policy : {"hash", "range"}) {
        ShardedEngineOptions sopt;
        sopt.num_shards = shards;
        sopt.policy = MakePolicy(policy, data);
        sopt.num_threads = 2;
        variants.push_back(std::make_unique<ShardedQueryEngine>(data, sopt));
        ASSERT_EQ(variants.back()->num_shards(), shards);
        named.push_back({"dataset " + std::to_string(d) + " shards " +
                             std::to_string(shards) + " policy " + policy,
                         variants.back().get()});
      }
    }
    testutil::RunDifferentialStream(reference, named, stream);
  }
}

TEST(ShardedEngineTest, FourShardSingleExecuteMatchesEveryStrategy) {
  Dataset data = datagen::MakeUniformScatter(300, 250.0, 2.0, /*seed=*/5);
  QueryEngine reference(data, EngineOptions{1});
  ShardedEngineOptions sopt;
  sopt.num_shards = 4;
  sopt.num_threads = 4;
  ShardedQueryEngine sharded(data, sopt);

  for (Strategy strategy : {Strategy::kBasic, Strategy::kRefine,
                            Strategy::kVR, Strategy::kMonteCarlo}) {
    QueryOptions opt = OptionsFor(strategy);
    for (double q : datagen::MakeQueryPoints(5, 0.0, 250.0, /*seed=*/77)) {
      ExpectIdenticalResult(reference.Execute(PointQuery{q, opt}),
                            sharded.Execute(PointQuery{q, opt}),
                            std::string(ToString(strategy)));
    }
  }
}

TEST(ShardedEngineTest, RangeShardingPrunesDistantShards) {
  // Clustered data + range sharding: a query inside one cluster must not
  // scatter candidate collection to every shard.
  datagen::SyntheticConfig config;
  config.count = 600;
  config.domain_hi = 10000.0;
  config.mean_length = 4.0;
  config.num_clusters = 6;
  config.cluster_fraction = 1.0;
  config.seed = 9;
  Dataset data = datagen::MakeSynthetic(config);

  ShardedEngineOptions sopt;
  sopt.num_shards = 8;
  sopt.policy = MakePolicy("range", data);
  sopt.num_threads = 2;
  ShardedQueryEngine sharded(data, sopt);

  QueryEngine reference(data, EngineOptions{1});
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  for (double q : datagen::MakeQueryPoints(6, 0.0, 10000.0, /*seed=*/3)) {
    ExpectIdenticalResult(reference.Execute(PointQuery{q, opt}),
                          sharded.Execute(PointQuery{q, opt}),
                          "pruned point query");
  }
  EXPECT_GT(sharded.ShardsPruned(), 0u);
  EXPECT_GT(sharded.ShardVisits(), 0u);
  // Pruning skipped real work: not every query visited every shard.
  EXPECT_LT(sharded.ShardVisits(), 6u * sharded.num_shards());
}

TEST(ShardedEngineTest, ShardedBatchStatsSumAcrossShards) {
  Dataset data = datagen::MakeUniformScatter(300, 250.0, 2.0, /*seed=*/8);
  ShardedEngineOptions sopt;
  sopt.num_shards = 4;
  sopt.num_threads = 2;
  ShardedQueryEngine sharded(data, sopt);

  const QueryOptions opt = OptionsFor(Strategy::kVR);
  std::vector<QueryRequest> batch;
  for (double q : datagen::MakeQueryPoints(10, 0.0, 250.0, /*seed=*/4)) {
    batch.push_back(PointQuery{q, opt});
  }
  ShardedBatchStats stats;
  std::vector<QueryResult> results =
      sharded.ExecuteBatch(std::move(batch), &stats);
  ASSERT_EQ(results.size(), 10u);

  EXPECT_EQ(stats.gathered.queries, 10u);
  EXPECT_GT(stats.gathered.wall_ms, 0.0);
  EXPECT_GT(stats.gathered.totals.candidates, 0u);
  ASSERT_FALSE(stats.gathered.verifier_stages.empty());

  ASSERT_EQ(stats.per_shard.size(), 4u);
  // scatter_totals is exactly the merge of the per-shard aggregates.
  EngineStats remerged = MergeEngineStats(stats.per_shard);
  EXPECT_EQ(stats.scatter_totals.queries, remerged.queries);
  EXPECT_EQ(stats.scatter_totals.totals.filter_ms,
            remerged.totals.filter_ms);
  EXPECT_EQ(stats.scatter_totals.totals.candidates,
            remerged.totals.candidates);
  // Every query visited at least one shard, and the per-shard query counts
  // sum to the visit count.
  size_t shard_queries = 0;
  for (const EngineStats& ps : stats.per_shard) shard_queries += ps.queries;
  EXPECT_GE(shard_queries, 10u);
  EXPECT_GT(stats.shard_visits, 0u);
  // The candidates the shards contributed cover the gathered candidate
  // total (FinishConstruction may prune a few boundary survivors).
  EXPECT_GE(stats.scatter_totals.totals.candidates,
            stats.gathered.totals.candidates);
  // Rates stay finite even for the scatter-side aggregates (no wall time).
  EXPECT_TRUE(std::isfinite(stats.scatter_totals.QueriesPerSec()));
  EXPECT_TRUE(
      std::isfinite(stats.scatter_totals.PhaseFraction(&QueryStats::filter_ms)));
}

TEST(ShardedEngineTest, AsyncSubmitMatchesReferenceUnderConcurrency) {
  Dataset data = datagen::MakeUniformScatter(200, 250.0, 2.0, /*seed=*/12);
  QueryEngine reference(data, EngineOptions{1});
  ShardedEngineOptions sopt;
  sopt.num_shards = 4;
  sopt.num_threads = 2;
  ShardedQueryEngine sharded(data, sopt);

  const QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<double> points =
      datagen::MakeQueryPoints(8, 0.0, 250.0, /*seed=*/31);
  std::vector<QueryResult> expected;
  for (double q : points) {
    expected.push_back(reference.Execute(PointQuery{q, opt}));
  }

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 12;
  std::vector<std::vector<std::future<QueryResult>>> futures(kThreads);
  {
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = 0; i < kPerThread; ++i) {
          futures[t].push_back(sharded.Submit(
              PointQuery{points[(t + i) % points.size()], opt}));
        }
      });
    }
    // Batches keep running on the same engine while Submits stream in.
    for (int round = 0; round < 3; ++round) {
      std::vector<QueryRequest> batch;
      for (double q : points) batch.push_back(PointQuery{q, opt});
      std::vector<QueryResult> results = sharded.ExecuteBatch(std::move(batch));
      for (size_t i = 0; i < points.size(); ++i) {
        ExpectIdenticalResult(expected[i], results[i], "batch during submit");
      }
    }
    for (std::thread& th : submitters) th.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      ExpectIdenticalResult(expected[(t + i) % points.size()],
                            futures[t][i].get(), "sharded submit");
    }
  }
  SubmitQueueStats qstats = sharded.SubmitStats();
  EXPECT_EQ(qstats.requests, kThreads * kPerThread);
  EXPECT_GE(qstats.batches, 1u);
  EXPECT_LE(qstats.batches, qstats.requests);
}

// Both worker-pool implementations must produce bit-identical answers:
// with the work-stealing pool every request's shard loop runs as a REAL
// nested ParallelFor inside batch workers (idle workers steal shard
// tasks), while the global-queue pool scans shards sequentially there —
// scheduling is the only difference allowed.
TEST(ShardedEngineTest, PoolKindsBitIdenticalIncludingNestedScatter) {
  Dataset data = datagen::MakeUniformScatter(400, 250.0, 2.0, /*seed=*/23);
  QueryEngine reference(data, EngineOptions{2});
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<double> points =
      datagen::MakeQueryPoints(4, 0.0, 250.0, /*seed=*/41);

  std::vector<testutil::RequestFactory> stream =
      testutil::MakeMixedKindStream(points, opt, /*seed=*/23);
  const CpnnExecutor& exec = reference.executor();
  for (double q : points) {
    stream.push_back([&exec, q, opt] {
      FilterResult filtered = exec.Filter(q);
      return QueryRequest(CandidatesQuery(
          CandidateSet::Build1D(exec.dataset(), filtered.candidates, q),
          opt));
    });
  }

  std::vector<std::unique_ptr<ShardedQueryEngine>> variants;
  std::vector<testutil::NamedEngine> named;
  for (PoolKind kind : {PoolKind::kGlobalQueue, PoolKind::kWorkStealing}) {
    ShardedEngineOptions sopt;
    sopt.num_shards = 4;
    sopt.num_threads = 4;
    sopt.pool = kind;
    variants.push_back(std::make_unique<ShardedQueryEngine>(data, sopt));
    ASSERT_EQ(variants.back()->pool().kind(), kind);
    ASSERT_EQ(variants.back()->pool().SupportsNestedParallelFor(),
              kind == PoolKind::kWorkStealing);
    named.push_back({std::string(ToString(kind)), variants.back().get()});
  }

  // exercise_submit covers the dispatcher-coalesced batches, which run the
  // nested shard scatter too.
  testutil::DifferentialConfig config;
  config.exercise_submit = true;
  testutil::RunDifferentialStream(reference, named, stream, config);
}

TEST(ShardedEngineTest, DegenerateShapesMatchUnsharded) {
  const QueryOptions opt = OptionsFor(Strategy::kVR);

  // Empty dataset.
  {
    ShardedQueryEngine sharded(Dataset{}, ShardedEngineOptions{4, nullptr, 2});
    QueryEngine reference(Dataset{}, EngineOptions{1});
    // Requests are move-only, so each engine gets its own freshly built
    // payload rather than a copy.
    const std::vector<std::function<QueryRequest()>> kinds = {
        [&] { return QueryRequest(PointQuery{1.0, opt}); },
        [&] { return QueryRequest(MinQuery{opt}); },
        [&] { return QueryRequest(MaxQuery{opt}); }};
    for (const auto& make : kinds) {
      ExpectIdenticalResult(reference.Execute(make()),
                            sharded.Execute(make()), "empty dataset");
    }
  }

  // More shards than objects: most shards are empty.
  {
    Dataset tiny = datagen::MakeUniformScatter(3, 50.0, 2.0, /*seed=*/2);
    ShardedQueryEngine sharded(tiny, ShardedEngineOptions{8, nullptr, 2});
    QueryEngine reference(tiny, EngineOptions{1});
    for (double q : {0.0, 10.0, 25.0, 49.0}) {
      ExpectIdenticalResult(reference.Execute(PointQuery{q, opt}),
                            sharded.Execute(PointQuery{q, opt}),
                            "tiny dataset");
      ExpectIdenticalResult(reference.Execute(KnnQuery{q, 2, opt}),
                            sharded.Execute(KnnQuery{q, 2, opt}),
                            "tiny knn");
    }
    // k larger than the dataset.
    ExpectIdenticalResult(reference.Execute(KnnQuery{10.0, 7, opt}),
                          sharded.Execute(KnnQuery{10.0, 7, opt}),
                          "k > n");
  }

  // Empty batch: stats stay zero and finite.
  {
    Dataset data = datagen::MakeUniformScatter(20, 50.0, 2.0, /*seed=*/6);
    ShardedQueryEngine sharded(data, ShardedEngineOptions{2, nullptr, 2});
    ShardedBatchStats stats;
    EXPECT_TRUE(sharded.ExecuteBatch({}, &stats).empty());
    EXPECT_EQ(stats.gathered.queries, 0u);
    EXPECT_TRUE(std::isfinite(stats.gathered.QueriesPerSec()));
    EXPECT_TRUE(std::isfinite(stats.gathered.AvgQueryMs()));
    EXPECT_TRUE(
        std::isfinite(stats.gathered.PhaseFraction(&QueryStats::verify_ms)));
  }
}

TEST(ShardedEngineTest, PartitionDisjointCoverAndPolicyDeterminism) {
  Dataset data = datagen::MakeUniformScatter(200, 100.0, 1.5, /*seed=*/14);
  for (const std::string& name : {"hash", "range"}) {
    std::shared_ptr<const ShardingPolicy> policy = MakePolicy(name, data);
    std::vector<Dataset> shards = PartitionDataset(data, 4, *policy);
    ASSERT_EQ(shards.size(), 4u);
    size_t total = 0;
    std::vector<ObjectId> seen;
    for (const Dataset& shard : shards) {
      total += shard.size();
      for (const UncertainObject& obj : shard) seen.push_back(obj.id());
    }
    EXPECT_EQ(total, data.size()) << name;
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
        << name << ": object assigned twice";
    // Deterministic: partitioning again yields the same assignment.
    std::vector<Dataset> again = PartitionDataset(data, 4, *policy);
    for (size_t s = 0; s < 4; ++s) {
      ASSERT_EQ(shards[s].size(), again[s].size()) << name;
      for (size_t i = 0; i < shards[s].size(); ++i) {
        EXPECT_EQ(shards[s][i].id(), again[s][i].id()) << name;
      }
    }
  }
}

}  // namespace
}  // namespace pverify
