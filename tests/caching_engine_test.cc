// Lockdown tests for the memoizing CachingEngine tier: cold-miss → warm-hit
// behavior on repeated streams, the exactness contract (quantized keys,
// borderline guard band, LRU eviction and epoch invalidation never change
// an answer bit), capacity-0 pass-through, CacheStats plumbing, and a
// concurrent-Submit stress test shared with the TSan CI job (this file
// carries the `engine` CTest label).
#include "engine/caching_engine.h"

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "differential_testutil.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"

namespace pverify {
namespace {

Dataset TestDataset(size_t count = 250) {
  return datagen::MakeUniformScatter(count, 250.0, 2.0, /*seed=*/3);
}

std::vector<double> TestQueryPoints(size_t count = 6) {
  return datagen::MakeQueryPoints(count, 0.0, 250.0, /*seed=*/21);
}

QueryOptions OptionsFor(Strategy strategy) {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = strategy;
  opt.report_probabilities = true;
  return opt;
}

std::vector<QueryRequest> PointBatch(const std::vector<double>& points,
                                     const QueryOptions& opt) {
  std::vector<QueryRequest> batch;
  for (double q : points) batch.push_back(PointQuery{q, opt});
  return batch;
}

// Both backend shapes the cache tier must be transparent over.
std::unique_ptr<Engine> MakeBackend(const std::string& name,
                                    const Dataset& data) {
  if (name == "sharded") {
    ShardedEngineOptions sopt;
    sopt.num_shards = 2;
    sopt.num_threads = 2;
    return std::make_unique<ShardedQueryEngine>(data, sopt);
  }
  return std::make_unique<QueryEngine>(data, EngineOptions{2});
}

// A repeated stream turns into misses once and hits forever after — for
// every strategy, over both backends, with every warm answer bit-identical
// to the cold one and flagged served_from_cache.
TEST(CachingEngineTest, ColdMissesThenWarmHitsAllStrategiesBothBackends) {
  Dataset data = TestDataset();
  const std::vector<double> points = TestQueryPoints();
  for (const char* backend_name : {"unsharded", "sharded"}) {
    for (Strategy strategy : {Strategy::kBasic, Strategy::kRefine,
                              Strategy::kVR, Strategy::kMonteCarlo}) {
      const std::string what =
          std::string(backend_name) + " " + ToString(strategy).data();
      std::unique_ptr<Engine> backend = MakeBackend(backend_name, data);
      CachingEngine cached(*backend);

      const QueryOptions opt = OptionsFor(strategy);
      EngineStats cold_stats;
      std::vector<QueryResult> cold =
          cached.ExecuteBatch(PointBatch(points, opt), &cold_stats);
      EXPECT_EQ(cold_stats.cache.misses, points.size()) << what;
      EXPECT_EQ(cold_stats.cache.hits, 0u) << what;
      EXPECT_EQ(cold_stats.cache.entries, points.size()) << what;
      EXPECT_GT(cold_stats.cache.bytes, 0u) << what;

      EngineStats warm_stats;
      std::vector<QueryResult> warm =
          cached.ExecuteBatch(PointBatch(points, opt), &warm_stats);
      EXPECT_EQ(warm_stats.cache.hits, points.size()) << what;
      EXPECT_EQ(warm_stats.cache.misses, 0u) << what;
      EXPECT_EQ(warm_stats.cache.rechecks, 0u) << what;

      ASSERT_EQ(cold.size(), warm.size()) << what;
      for (size_t i = 0; i < cold.size(); ++i) {
        EXPECT_FALSE(cold[i].stats.served_from_cache) << what;
        EXPECT_TRUE(warm[i].stats.served_from_cache) << what;
        testutil::ExpectEquivalentResult(cold[i], warm[i], /*max_ulps=*/0,
                                         what + " request " +
                                             std::to_string(i));
      }
      EXPECT_DOUBLE_EQ(cached.GetCacheStats().HitRate(), 0.5) << what;
    }
  }
}

// The differential harness drives a randomized mixed-kind stream (point,
// min, max, knn, candidate-set) through cache-wrapped variants of both
// backends for several rounds — the first round populates, later rounds
// serve memoized answers — through ExecuteBatch AND the coalescing Submit
// path. Every answer must match the uncached single-thread reference bit
// for bit.
TEST(CachingEngineTest, MixedStreamBitIdenticalToUncachedOverRounds) {
  Dataset data = TestDataset(300);
  QueryEngine reference(data, EngineOptions{1});
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<double> points = TestQueryPoints(8);

  std::vector<testutil::RequestFactory> stream =
      testutil::MakeMixedKindStream(points, opt, /*seed=*/11);
  const CpnnExecutor& exec = reference.executor();
  for (double q : points) {
    stream.push_back([&exec, q, opt] {
      FilterResult filtered = exec.Filter(q);
      return QueryRequest(CandidatesQuery(
          CandidateSet::Build1D(exec.dataset(), filtered.candidates, q),
          opt));
    });
  }

  std::unique_ptr<Engine> unsharded = MakeBackend("unsharded", data);
  std::unique_ptr<Engine> sharded = MakeBackend("sharded", data);
  CachingEngine cached_unsharded(*unsharded);
  CachingEngine cached_sharded(*sharded);
  // A deliberately tiny cache so later rounds also exercise eviction.
  CachingEngineOptions tiny;
  tiny.capacity = 4;
  tiny.num_shards = 2;
  std::unique_ptr<Engine> tiny_backend = MakeBackend("unsharded", data);
  CachingEngine cached_tiny(*tiny_backend, tiny);

  testutil::DifferentialConfig config;
  config.rounds = 3;
  config.exercise_submit = true;
  testutil::RunDifferentialStream(reference,
                                  {{"cached unsharded", &cached_unsharded},
                                   {"cached sharded", &cached_sharded},
                                   {"cached tiny-lru", &cached_tiny}},
                                  stream, config);

  // The big caches really served from memory on the warm rounds…
  EXPECT_GT(cached_unsharded.GetCacheStats().hits, 0u);
  EXPECT_GT(cached_sharded.GetCacheStats().hits, 0u);
  // …and the tiny one really evicted.
  EXPECT_GT(cached_tiny.GetCacheStats().evictions, 0u);
}

// Entries whose probability bounds sit inside the guard band are marked
// borderline and recheck on every lookup — never served from memory.
TEST(CachingEngineTest, BorderlineEntriesAlwaysRecheck) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  QueryEngine reference(data, EngineOptions{1});
  // Probabilities live in [0, 1] and the threshold is 0.3, so a band of
  // 1.0 makes every reported bound borderline by construction.
  CachingEngineOptions copt;
  copt.guard_band = 1.0;
  CachingEngine cached(backend, copt);

  const std::vector<double> points = TestQueryPoints();
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  for (int round = 0; round < 3; ++round) {
    EngineStats stats;
    std::vector<QueryResult> got =
        cached.ExecuteBatch(PointBatch(points, opt), &stats);
    EXPECT_EQ(stats.cache.hits, 0u) << "round " << round;
    if (round == 0) {
      EXPECT_EQ(stats.cache.misses, points.size());
    } else {
      // The entries exist but every one rechecks.
      EXPECT_EQ(stats.cache.rechecks, points.size()) << "round " << round;
      EXPECT_EQ(stats.cache.misses, 0u) << "round " << round;
    }
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_FALSE(got[i].stats.served_from_cache);
      testutil::ExpectEquivalentResult(
          reference.Execute(PointQuery{points[i], opt}), got[i],
          /*max_ulps=*/0, "borderline round " + std::to_string(round));
    }
  }
  EXPECT_EQ(cached.GetCacheStats().hits, 0u);
}

// A capacity far below the working set evicts constantly; answers still
// match the uncached reference on every round and the entry count never
// exceeds the configured capacity.
TEST(CachingEngineTest, LruEvictionNeverChangesAnswers) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  QueryEngine reference(data, EngineOptions{1});
  CachingEngineOptions copt;
  copt.capacity = 4;
  copt.num_shards = 1;
  CachingEngine cached(backend, copt);

  const std::vector<double> points =
      datagen::MakeQueryPoints(12, 0.0, 250.0, /*seed=*/7);
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  for (int round = 0; round < 3; ++round) {
    std::vector<QueryResult> got =
        cached.ExecuteBatch(PointBatch(points, opt));
    for (size_t i = 0; i < points.size(); ++i) {
      testutil::ExpectEquivalentResult(
          reference.Execute(PointQuery{points[i], opt}), got[i],
          /*max_ulps=*/0,
          "evicting round " + std::to_string(round) + " request " +
              std::to_string(i));
    }
    EXPECT_LE(cached.GetCacheStats().entries, copt.capacity);
  }
  EXPECT_GT(cached.GetCacheStats().evictions, 0u);
}

// BumpEpoch drops the whole cache: entries go to zero, the next round
// misses wholesale, and hits only resume after re-population.
TEST(CachingEngineTest, EpochBumpInvalidatesWholesale) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  CachingEngine cached(backend);
  const std::vector<double> points = TestQueryPoints();
  const QueryOptions opt = OptionsFor(Strategy::kVR);

  cached.ExecuteBatch(PointBatch(points, opt));
  EXPECT_EQ(cached.GetCacheStats().entries, points.size());
  EXPECT_EQ(cached.epoch(), 0u);

  cached.BumpEpoch();
  EXPECT_EQ(cached.epoch(), 1u);
  CacheStats after_bump = cached.GetCacheStats();
  EXPECT_EQ(after_bump.entries, 0u);
  EXPECT_EQ(after_bump.bytes, 0u);
  EXPECT_EQ(after_bump.invalidations, points.size());

  EngineStats repopulate;
  cached.ExecuteBatch(PointBatch(points, opt), &repopulate);
  EXPECT_EQ(repopulate.cache.misses, points.size());
  EXPECT_EQ(repopulate.cache.hits, 0u);

  EngineStats warm;
  cached.ExecuteBatch(PointBatch(points, opt), &warm);
  EXPECT_EQ(warm.cache.hits, points.size());
}

// capacity == 0 is a pure pass-through: nothing is ever stored or looked
// up, every request is a bypass, and answers match the backend.
TEST(CachingEngineTest, CapacityZeroIsPassThrough) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  QueryEngine reference(data, EngineOptions{1});
  CachingEngineOptions copt;
  copt.capacity = 0;
  CachingEngine cached(backend, copt);

  const std::vector<double> points = TestQueryPoints();
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  for (int round = 0; round < 2; ++round) {
    EngineStats stats;
    std::vector<QueryResult> got =
        cached.ExecuteBatch(PointBatch(points, opt), &stats);
    EXPECT_EQ(stats.cache.bypasses, points.size());
    EXPECT_EQ(stats.cache.hits, 0u);
    EXPECT_EQ(stats.cache.misses, 0u);
    EXPECT_EQ(stats.cache.entries, 0u);
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_FALSE(got[i].stats.served_from_cache);
      testutil::ExpectEquivalentResult(
          reference.Execute(PointQuery{points[i], opt}), got[i],
          /*max_ulps=*/0, "pass-through round " + std::to_string(round));
    }
  }
  EXPECT_EQ(cached.GetCacheStats().HitRate(), 0.0);
}

// Coarse quantization collapses distinct queries onto one cache slot —
// which bounds cardinality but must never serve one point's answer for
// another: same-cell lookups with a different exact point recheck.
TEST(CachingEngineTest, QuantizationBoundsCardinalityNotAnswers) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  QueryEngine reference(data, EngineOptions{1});
  CachingEngineOptions copt;
  copt.point_quantum = 1000.0;  // the whole domain is one cell
  copt.num_shards = 1;
  CachingEngine cached(backend, copt);

  const std::vector<double> points = TestQueryPoints();
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  // The batch path looks every request up before inserting any result, so
  // the cold round misses wholesale — but all six same-cell inserts then
  // collapse onto ONE entry (the last request in batch order owns it).
  EngineStats stats;
  std::vector<QueryResult> got =
      cached.ExecuteBatch(PointBatch(points, opt), &stats);
  EXPECT_EQ(stats.cache.misses, points.size());
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.entries, 1u);
  for (size_t i = 0; i < points.size(); ++i) {
    testutil::ExpectEquivalentResult(
        reference.Execute(PointQuery{points[i], opt}), got[i],
        /*max_ulps=*/0, "quantized request " + std::to_string(i));
  }
  // Replaying the stream: the cell owner hits; every other point lands on
  // the occupied cell, rechecks (exact fingerprint mismatch), and computes
  // its own answer — coarse keys never substitute a neighbor's result.
  EngineStats warm_stats;
  std::vector<QueryResult> warm =
      cached.ExecuteBatch(PointBatch(points, opt), &warm_stats);
  EXPECT_EQ(warm_stats.cache.hits, 1u);
  EXPECT_EQ(warm_stats.cache.rechecks, points.size() - 1);
  EXPECT_EQ(warm_stats.cache.misses, 0u);
  EXPECT_EQ(warm_stats.cache.entries, 1u);
  for (size_t i = 0; i < points.size(); ++i) {
    testutil::ExpectEquivalentResult(
        reference.Execute(PointQuery{points[i], opt}), warm[i],
        /*max_ulps=*/0, "quantized replay " + std::to_string(i));
  }
}

// Bucketed thresholds share a coarse key, but a lookup with different
// options must compute its own answer — never the cached neighbor's.
TEST(CachingEngineTest, OptionChangesNeverServeStaleAnswers) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  QueryEngine reference(data, EngineOptions{1});
  CachingEngineOptions copt;
  copt.threshold_quantum = 1.0;  // 0.3 and 0.5 share one bucket
  copt.num_shards = 1;
  CachingEngine cached(backend, copt);

  const double q = 125.0;
  QueryOptions low = OptionsFor(Strategy::kVR);
  QueryOptions high = OptionsFor(Strategy::kVR);
  high.params.threshold = 0.5;

  QueryResult first = cached.Execute(PointQuery{q, low});
  QueryResult second = cached.Execute(PointQuery{q, high});
  EXPECT_FALSE(second.stats.served_from_cache);
  testutil::ExpectEquivalentResult(reference.Execute(PointQuery{q, high}),
                                   second, /*max_ulps=*/0,
                                   "same-bucket different threshold");
  testutil::ExpectEquivalentResult(reference.Execute(PointQuery{q, low}),
                                   first, /*max_ulps=*/0, "low threshold");
  CacheStats stats = cached.GetCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.rechecks, 1u);  // the 0.5 lookup found the 0.3 entry
}

// Candidate-set requests carry a consumed payload and bypass the cache —
// both executions run on the backend and agree.
TEST(CachingEngineTest, CandidateRequestsBypassTheCache) {
  Dataset data = TestDataset();
  QueryEngine backend(data, EngineOptions{2});
  CachingEngine cached(backend);
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  const double q = 100.0;

  auto build_request = [&] {
    FilterResult filtered = backend.executor().Filter(q);
    return QueryRequest(CandidatesQuery(
        CandidateSet::Build1D(data, filtered.candidates, q), opt));
  };
  QueryResult a = cached.Execute(build_request());
  QueryResult b = cached.Execute(build_request());
  testutil::ExpectEquivalentResult(a, b, /*max_ulps=*/0,
                                   "bypassed candidates");
  CacheStats stats = cached.GetCacheStats();
  EXPECT_EQ(stats.bypasses, 2u);
  EXPECT_EQ(stats.hits + stats.misses + stats.rechecks, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// The owning factory: the cache tier keeps its backend alive, and failures
// submitted through the cache surface on their own future without
// poisoning the queue.
TEST(CachingEngineTest, OwningFactoryAndSubmitFailureIsolation) {
  Dataset data = TestDataset();
  std::unique_ptr<CachingEngine> cached = MakeCachingEngine(
      std::make_unique<QueryEngine>(data, EngineOptions{2}));
  const QueryOptions opt = OptionsFor(Strategy::kVR);

  std::future<QueryResult> good = cached->Submit(PointQuery{50.0, opt});
  QueryOptions bad;
  bad.params = {0.0, 0.0};  // threshold must be positive
  std::future<QueryResult> failing = cached->Submit(PointQuery{1.0, bad});
  EXPECT_THROW(failing.get(), std::logic_error);
  QueryResult first = good.get();

  // The queue still serves, and the earlier good answer is now memoized.
  QueryResult again = cached->Submit(PointQuery{50.0, opt}).get();
  EXPECT_TRUE(again.stats.served_from_cache);
  testutil::ExpectEquivalentResult(first, again, /*max_ulps=*/0,
                                   "submit after failure");
  EXPECT_GE(cached->SubmitStats().requests, 3u);
}

// The TSan stress test (CI re-runs this file under ThreadSanitizer):
// several threads stream Zipf-skewed Submits at ONE shared CachingEngine
// while the main thread runs batches and bumps the dataset epoch — racing
// Lookup/Insert against wholesale invalidation. Every future must resolve
// to the uncached reference answer.
TEST(CachingEngineTest, ConcurrentSubmitStressOnSharedCache) {
  Dataset data = TestDataset(200);
  QueryEngine backend(data, EngineOptions{4});
  QueryEngine reference(data, EngineOptions{1});
  CachingEngineOptions copt;
  copt.capacity = 16;  // small enough that eviction races too
  copt.num_shards = 4;
  CachingEngine cached(backend, copt);

  const QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<double> points = TestQueryPoints(8);
  std::vector<QueryResult> expected;
  for (double q : points) {
    expected.push_back(reference.Execute(PointQuery{q, opt}));
  }

  constexpr size_t kThreads = 6;
  constexpr size_t kPerThread = 20;
  std::vector<std::vector<std::future<QueryResult>>> futures(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 0; i < kPerThread; ++i) {
        // Zipf-ish skew: every other request goes to the hottest point.
        const size_t p = i % 2 == 0 ? 0 : (t + i) % points.size();
        futures[t].push_back(cached.Submit(PointQuery{points[p], opt}));
      }
    });
  }
  go.store(true);
  for (int round = 0; round < 3; ++round) {
    std::vector<QueryResult> results =
        cached.ExecuteBatch(PointBatch(points, opt));
    ASSERT_EQ(results.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      testutil::ExpectEquivalentResult(expected[i], results[i],
                                       /*max_ulps=*/0,
                                       "batch under stress round " +
                                           std::to_string(round));
    }
    cached.BumpEpoch();  // invalidation races the submit streams
  }
  for (std::thread& th : submitters) th.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(futures[t].size(), kPerThread);
    for (size_t i = 0; i < kPerThread; ++i) {
      const size_t p = i % 2 == 0 ? 0 : (t + i) % points.size();
      testutil::ExpectEquivalentResult(
          expected[p], futures[t][i].get(), /*max_ulps=*/0,
          "stress submit thread " + std::to_string(t) + " request " +
              std::to_string(i));
    }
  }
  // The skewed stream found the cache at least sometimes.
  CacheStats stats = cached.GetCacheStats();
  EXPECT_GT(stats.hits + stats.misses + stats.rechecks, 0u);
  EXPECT_EQ(cached.SubmitStats().requests, kThreads * kPerThread);
}

}  // namespace
}  // namespace pverify
