// Pins the batched StepFunction evaluators (IntegralToSorted's merge scan,
// IntegralToMany's per-point fallback) and DistanceDistribution::CdfSorted
// bit-identical to a scalar IntegralTo/Cdf loop — the contract that lets
// the subregion table build use the merge scan unconditionally in every
// build configuration and kernel flavor.
#include "common/piecewise.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "uncertain/distance_distribution.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

// Random step function with `pieces` pieces on roughly [0, pieces * 0.5].
StepFunction MakeRandomStep(Rng& rng, int pieces) {
  std::vector<double> breaks;
  double x = rng.Uniform(-1.0, 1.0);
  breaks.push_back(x);
  for (int i = 0; i < pieces; ++i) {
    x += rng.Uniform(0.01, 1.0);
    breaks.push_back(x);
  }
  std::vector<double> values;
  for (int i = 0; i < pieces; ++i) {
    // A sprinkle of zero-height pieces exercises flat cdf stretches.
    values.push_back(rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(0.0, 2.0));
  }
  return StepFunction(std::move(breaks), std::move(values));
}

// Sorted batch of query points straddling the support: below, inside
// (including exact breakpoints and duplicates), above.
std::vector<double> MakeSortedBatch(Rng& rng, const StepFunction& f,
                                    size_t n) {
  const double lo = f.support_lo();
  const double hi = f.support_hi();
  std::vector<double> xs;
  xs.reserve(n + 8);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.Uniform(-0.2, 1.2);  // 40% mass out of support
    xs.push_back(lo + u * (hi - lo));
  }
  // Exact breakpoints are the interesting boundary cases of the cursor
  // advance (upper_bound semantics: x on a breakpoint belongs to the piece
  // starting there).
  for (double b : f.breaks()) {
    if (xs.size() >= n + 8) break;
    xs.push_back(b);
  }
  xs.push_back(lo);
  xs.push_back(hi);
  std::sort(xs.begin(), xs.end());
  // Duplicates: repeat a few entries in place.
  if (xs.size() > 4) {
    xs[1] = xs[0];
    xs[xs.size() / 2] = xs[xs.size() / 2 - 1];
  }
  return xs;
}

TEST(PiecewiseBatchTest, SortedMatchesScalarBitForBit) {
  Rng rng(2026);
  for (int pieces : {1, 2, 7, 64, 300}) {
    for (int rep = 0; rep < 8; ++rep) {
      StepFunction f = MakeRandomStep(rng, pieces);
      std::vector<double> xs = MakeSortedBatch(rng, f, 257);
      std::vector<double> got(xs.size(), -1.0);
      f.IntegralToSorted(xs.data(), xs.size(), got.data());
      for (size_t i = 0; i < xs.size(); ++i) {
        ASSERT_EQ(got[i], f.IntegralTo(xs[i]))
            << "pieces=" << pieces << " rep=" << rep << " i=" << i
            << " x=" << xs[i];
      }
    }
  }
}

TEST(PiecewiseBatchTest, ManyMatchesScalarOnUnsortedBatch) {
  Rng rng(7);
  StepFunction f = MakeRandomStep(rng, 33);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(f.support_lo() +
                 rng.Uniform(-0.3, 1.3) * (f.support_hi() - f.support_lo()));
  }
  std::vector<double> got(xs.size(), -1.0);
  f.IntegralToMany(xs.data(), xs.size(), got.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(got[i], f.IntegralTo(xs[i])) << "i=" << i;
  }
}

TEST(PiecewiseBatchTest, EmptyFunctionYieldsZeros) {
  StepFunction f;
  const double xs[] = {-1.0, 0.0, 2.5};
  double out[] = {9.0, 9.0, 9.0};
  f.IntegralToSorted(xs, 3, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 0.0);
  out[0] = out[1] = out[2] = 9.0;
  f.IntegralToMany(xs, 3, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 0.0);
}

TEST(PiecewiseBatchTest, ZeroLengthBatchIsANoop) {
  StepFunction f = StepFunction::Constant(0.0, 1.0, 1.0);
  f.IntegralToSorted(nullptr, 0, nullptr);
  f.IntegralToMany(nullptr, 0, nullptr);
}

TEST(PiecewiseBatchTest, OutMayAliasXs) {
  Rng rng(11);
  StepFunction f = MakeRandomStep(rng, 17);
  std::vector<double> xs = MakeSortedBatch(rng, f, 64);
  std::vector<double> expect(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) expect[i] = f.IntegralTo(xs[i]);
  std::vector<double> inout = xs;
  f.IntegralToSorted(inout.data(), inout.size(), inout.data());
  EXPECT_EQ(inout, expect);
}

TEST(PiecewiseBatchTest, CdfSortedMatchesCdfOnDistanceDistribution) {
  // End-to-end through the type the subregion table consumes, with the
  // Gaussian histogram pdf (300 pieces) the benches use.
  Rng rng(23);
  const Pdf pdf = MakeGaussianPdf(2.0, 6.0);
  const DistanceDistribution dist = DistanceDistribution::From1D(pdf, 1.5);
  std::vector<double> rs = MakeSortedBatch(rng, dist.pdf(), 300);
  std::vector<double> got(rs.size());
  dist.CdfSorted(rs.data(), rs.size(), got.data());
  for (size_t i = 0; i < rs.size(); ++i) {
    ASSERT_EQ(got[i], dist.Cdf(rs[i])) << "i=" << i << " r=" << rs[i];
  }
  std::vector<double> many(rs.size());
  dist.CdfMany(rs.data(), rs.size(), many.data());
  EXPECT_EQ(many, got);
}

}  // namespace
}  // namespace pverify
