// WorkStealingPool tests: the nesting-safe ParallelFor contract the
// engines' nested shard fan-out depends on — no deadlock when workers
// start loops of their own, exceptions propagating out of inner loops to
// the nested call site, worker ids stable under stealing, and a
// randomized nested stress run (registered under the `engine` label so
// the TSan CI job covers the pool's synchronization).
#include "engine/work_steal_pool.h"

#include <array>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "engine/worker_pool.h"

namespace pverify {
namespace {

TEST(WorkStealPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  WorkStealingPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t worker, size_t index) {
    ASSERT_LT(worker, 4u);
    ASSERT_LT(index, n);
    hits[index].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealPoolTest, ZeroThreadRequestClampsToOne) {
  WorkStealingPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(WorkStealPoolTest, ParallelForZeroItemsIsNoop) {
  WorkStealingPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

// The tentpole property: a worker that reaches an inner ParallelFor
// participates instead of blocking, so depth-2 nesting completes even when
// every worker is inside an outer iteration simultaneously.
TEST(WorkStealPoolTest, NestedParallelForFromWorkersDoesNotDeadlock) {
  WorkStealingPool pool(4);
  const size_t outer = 8;   // every worker gets outer work
  const size_t inner = 64;
  std::vector<std::array<std::atomic<int>, 64>> hits(outer);
  pool.ParallelFor(outer, [&](size_t, size_t i) {
    pool.ParallelFor(inner, [&](size_t worker, size_t j) {
      ASSERT_LT(worker, 4u);
      hits[i][j].fetch_add(1);
    });
  });
  for (size_t i = 0; i < outer; ++i) {
    for (size_t j = 0; j < inner; ++j) {
      EXPECT_EQ(hits[i][j].load(), 1) << i << "," << j;
    }
  }
}

TEST(WorkStealPoolTest, NestedParallelForOnSingleWorkerPoolCompletes) {
  // With one worker nothing can be stolen: the nested caller must run the
  // whole inner loop itself (and drain its own spawned runners).
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t, size_t) {
    pool.ParallelFor(5, [&](size_t worker, size_t) {
      EXPECT_EQ(worker, 0u);
      count.fetch_add(1);
    });
  });
  EXPECT_EQ(count.load(), 15);
}

TEST(WorkStealPoolTest, TripleNestingCompletes) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t, size_t) {
    pool.ParallelFor(3, [&](size_t, size_t) {
      pool.ParallelFor(3, [&](size_t, size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 27);
}

TEST(WorkStealPoolTest, ExceptionPropagatesFromOuterLoopToExternalCaller) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](size_t, size_t index) {
                                  if (index == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives and stays usable.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// An exception in an inner loop surfaces at the INNER call site (inside
// the worker), where the outer iteration can handle it; unhandled, it then
// propagates through the outer loop to the external caller like any other
// callback exception.
TEST(WorkStealPoolTest, ExceptionPropagatesOutOfInnerLoops) {
  WorkStealingPool pool(4);
  std::atomic<int> inner_caught{0};
  pool.ParallelFor(4, [&](size_t, size_t) {
    try {
      pool.ParallelFor(16, [](size_t, size_t j) {
        if (j % 5 == 0) throw std::invalid_argument("inner");
      });
    } catch (const std::invalid_argument&) {
      inner_caught.fetch_add(1);
    }
  });
  EXPECT_EQ(inner_caught.load(), 4);

  EXPECT_THROW(pool.ParallelFor(4,
                                [&](size_t, size_t) {
                                  pool.ParallelFor(8, [](size_t, size_t j) {
                                    if (j == 7) {
                                      throw std::runtime_error("deep");
                                    }
                                  });
                                }),
               std::runtime_error);
}

// Worker ids are per-OS-thread and stable: across nesting and stealing,
// one thread always reports one id, every id is in range, and distinct
// threads never share an id — the property the engines' per-worker
// QueryScratch arenas rely on.
TEST(WorkStealPoolTest, WorkerIdsStableUnderNestingAndStealing) {
  WorkStealingPool pool(4);
  std::mutex mu;
  std::map<std::thread::id, std::set<size_t>> seen;
  auto record = [&](size_t worker) {
    ASSERT_LT(worker, 4u);
    std::lock_guard<std::mutex> g(mu);
    seen[std::this_thread::get_id()].insert(worker);
  };
  pool.ParallelFor(16, [&](size_t outer_worker, size_t) {
    record(outer_worker);
    pool.ParallelFor(32, [&](size_t inner_worker, size_t) {
      record(inner_worker);
    });
    // The participating thread reports the same id inside its own inner
    // loop as outside — checked globally below via the per-thread sets.
  });
  std::set<size_t> all_ids;
  for (const auto& [tid, ids] : seen) {
    EXPECT_EQ(ids.size(), 1u) << "one thread reported multiple worker ids";
    all_ids.insert(*ids.begin());
  }
  EXPECT_EQ(all_ids.size(), seen.size())
      << "distinct threads shared a worker id";
}

TEST(WorkStealPoolTest, SubmitAndWaitIdle) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 20);
}

TEST(WorkStealPoolTest, SubmitFromInsideWorkerLandsOnOwnDeque) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&pool, &count] {
      // Re-submission from a worker goes through the own-deque path.
      pool.Submit([&count](size_t worker) {
        EXPECT_LT(worker, 2u);
        count.fetch_add(1);
      });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 4);
}

TEST(WorkStealPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after the queues drain
  EXPECT_EQ(count.load(), 10);
}

TEST(WorkStealPoolTest, PoolTaskHeapFallbackForLargeCaptures) {
  WorkStealingPool pool(2);
  std::array<int, 64> payload{};  // 256 bytes — beyond the inline buffer
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<int>(i);
  std::atomic<int> sum{0};
  pool.Submit([payload, &sum] {
    int s = 0;
    for (int v : payload) s += v;
    sum.store(s);
  });
  pool.WaitIdle();
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(WorkStealPoolTest, ConcurrentExternalParallelForCallers) {
  WorkStealingPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 5; ++round) {
        pool.ParallelFor(40, [&](size_t, size_t) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 3 * 5 * 40);
}

// Randomized nested stress: outer loops of varying width where a
// deterministic subset of iterations fan out again, interleaved with
// fire-and-forget submissions. Exact counter totals prove no index is
// lost or duplicated under stealing; TSan proves the synchronization.
TEST(WorkStealPoolTest, RandomizedNestedStress) {
  WorkStealingPool pool(4);
  std::atomic<long> work{0};
  std::atomic<int> submitted{0};
  long expected_work = 0;
  int expected_submitted = 0;
  for (int round = 0; round < 10; ++round) {
    const size_t outer = 5 + (round * 7) % 23;
    long round_work = 0;
    for (size_t i = 0; i < outer; ++i) {
      const size_t inner = (i * 13 + round) % 11;
      round_work += inner == 0 ? 1 : static_cast<long>(inner);
    }
    expected_work += round_work;
    expected_submitted += static_cast<int>(outer / 3);
    for (size_t i = 0; i < outer / 3; ++i) {
      pool.Submit([&submitted] { submitted.fetch_add(1); });
    }
    pool.ParallelFor(outer, [&](size_t, size_t i) {
      const size_t inner = (i * 13 + round) % 11;
      if (inner == 0) {
        work.fetch_add(1);
        return;
      }
      pool.ParallelFor(inner, [&](size_t, size_t) { work.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(work.load(), expected_work);
  EXPECT_EQ(submitted.load(), expected_submitted);
}

// Foreign (drained/stolen) task time lands on the draining thread's
// foreign-work clock, so engines can subtract it from a blocked query's
// wall time instead of billing another query's work to it. The
// choreography pins a deterministic drain: the caller worker ends up in
// its nested loop's drain phase while the other worker holds the loop's
// last runner hostage, so the only runnable task anywhere — a ~20 ms
// foreign submission — must be executed by the blocked caller.
TEST(WorkStealPoolTest, DrainedForeignTaskTimeIsAccounted) {
  WorkStealingPool pool(2);
  std::atomic<bool> helper_started{false};
  std::atomic<bool> foreign_ran{false};
  std::atomic<double> foreign_delta{-1.0};
  constexpr double kBusyMs = 20.0;

  pool.Submit([&](size_t caller) {
    const double before = pool.ForeignWorkMsOnThisThread();
    pool.ParallelFor(2, [&](size_t worker, size_t) {
      if (worker == caller) {
        // Participant role: hold this index until the helper owns one, so
        // the caller cannot exhaust the loop alone and skip the drain.
        while (!helper_started.load()) std::this_thread::yield();
      } else {
        // Helper role: keep the loop latch up until the foreign task has
        // run; the blocked caller then has nothing else to drain.
        helper_started.store(true);
        while (!foreign_ran.load()) std::this_thread::yield();
      }
    });
    foreign_delta.store(pool.ForeignWorkMsOnThisThread() - before);
  });

  // Once the helper pins the loop open, hand the pool a foreign task that
  // only the blocked caller's drain loop can pick up.
  while (!helper_started.load()) std::this_thread::yield();
  pool.Submit([&] {
    Timer busy;
    while (busy.ElapsedMs() < kBusyMs) {
    }
    foreign_ran.store(true);
  });
  pool.WaitIdle();
  EXPECT_GE(foreign_delta.load(), kBusyMs * 0.9);
  // A thread outside the pool never drains foreign work.
  EXPECT_EQ(pool.ForeignWorkMsOnThisThread(), 0.0);
}

TEST(WorkStealPoolTest, FactoryAndKinds) {
  std::unique_ptr<WorkerPool> steal =
      MakeWorkerPool(PoolKind::kWorkStealing, 2);
  std::unique_ptr<WorkerPool> global =
      MakeWorkerPool(PoolKind::kGlobalQueue, 2);
  EXPECT_EQ(steal->kind(), PoolKind::kWorkStealing);
  EXPECT_TRUE(steal->SupportsNestedParallelFor());
  EXPECT_EQ(global->kind(), PoolKind::kGlobalQueue);
  EXPECT_FALSE(global->SupportsNestedParallelFor());
  EXPECT_EQ(ToString(PoolKind::kWorkStealing), "work-stealing");
  EXPECT_EQ(ToString(PoolKind::kGlobalQueue), "global-queue");
  std::atomic<int> count{0};
  steal->ParallelFor(8, [&](size_t, size_t) { count.fetch_add(1); });
  global->ParallelFor(8, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace pverify
