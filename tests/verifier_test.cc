#include "core/verifier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/basic.h"
#include "core/classifier.h"
#include "core/framework.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

CandidateSet ThreeStaggered() {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(1.0, 6.0));
  data.emplace_back(1, MakeUniformPdf(2.0, 7.0));
  data.emplace_back(2, MakeUniformPdf(3.0, 8.0));
  return CandidateSet::Build1D(data, {0, 1, 2}, 0.0);
}

TEST(RsVerifierTest, UpperBoundIsOneMinusRightmostMass) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  RsVerifier rs;
  rs.Apply(ctx);
  const size_t m = tbl.num_subregions();
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_NEAR(cands[i].bound.upper, 1.0 - tbl.s(i, m - 1), 1e-12);
    EXPECT_DOUBLE_EQ(cands[i].bound.lower, 0.0);  // RS never raises lower
  }
  // Candidate 2 has 0.4 mass beyond f_min → upper bound 0.6.
  EXPECT_NEAR(cands[2].bound.upper, 0.6, 1e-12);
}

TEST(RsVerifierTest, SkipsDecidedCandidates) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  cands[0].label = Label::kSatisfy;
  cands[0].bound = {0.9, 1.0};
  RsVerifier rs;
  rs.Apply(ctx);
  EXPECT_DOUBLE_EQ(cands[0].bound.upper, 1.0);  // untouched
}

TEST(LsrVerifierTest, LowerBoundsAreSound) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  LsrVerifier lsr;
  lsr.Apply(ctx);
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_LE(cands[i].bound.lower, exact[i] + 1e-9) << "i=" << i;
    EXPECT_GT(cands[i].bound.lower, 0.0) << "i=" << i;
  }
}

TEST(LsrVerifierTest, FirstSubregionAloneGivesFullCredit) {
  // Candidate 0 alone occupies S_1 = [1,2]: q_00.l must be 1 (Lemma 2,
  // c_j = 1 case).
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  LsrVerifier lsr;
  lsr.Apply(ctx);
  EXPECT_NEAR(ctx.QLow(0, 0), 1.0, 1e-12);
  // Its total lower bound is at least s_00 = 0.2.
  EXPECT_GE(cands[0].bound.lower, 0.2 - 1e-12);
}

TEST(LsrVerifierTest, MatchesHandComputedLemma2) {
  // Subregion S_2 = [2,3]: participants {0,1}, c = 2.
  // q_02.l = ½·(1 − D_1(2)) = ½·(1 − 0) = ½.
  // q_12.l = ½·(1 − D_0(2)) = ½·(1 − 0.2) = 0.4.
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  LsrVerifier lsr;
  lsr.Apply(ctx);
  EXPECT_NEAR(ctx.QLow(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(ctx.QLow(1, 1), 0.4, 1e-12);
}

TEST(UsrVerifierTest, UpperBoundsAreSound) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  UsrVerifier usr;
  usr.Apply(ctx);
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_GE(cands[i].bound.upper, exact[i] - 1e-9) << "i=" << i;
    EXPECT_LT(cands[i].bound.upper, 1.0) << "i=" << i;
  }
}

TEST(UsrVerifierTest, MatchesHandComputedEq5) {
  // Subregion S_1 = [1,2] for candidate 0: Pr(E) at e=1 is 1 (no cdf mass),
  // Pr(F) at e=2: (1−D_1(2))(1−D_2(2)) = 1. q_00.u = 1 — no pruning there.
  // Subregion S_3 = [3,6] for candidate 2: Pr(E) at e=3:
  // (1−D_0(3))(1−D_1(3)) = 0.6·0.8 = 0.48; Pr(F) at e=6 = 0·... = 0.
  // q_23.u = ½·0.48 = 0.24.
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  UsrVerifier usr;
  usr.Apply(ctx);
  EXPECT_NEAR(ctx.QUp(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(ctx.QUp(2, 2), 0.24, 1e-12);
  // Candidate 2's upper bound: s_22·q_22.u + s_23(rightmost)·0 = 0.6·0.24.
  EXPECT_NEAR(cands[2].bound.upper, 0.6 * 0.24, 1e-12);
}

TEST(UsrVerifierTest, TighterThanRsForInteriorObjects) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);

  CandidateSet cands_rs = cands;
  VerificationContext ctx_rs(&cands_rs, &tbl);
  RsVerifier().Apply(ctx_rs);

  VerificationContext ctx_usr(&cands, &tbl);
  UsrVerifier().Apply(ctx_usr);

  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_LE(cands[i].bound.upper, cands_rs[i].bound.upper + 1e-12);
  }
  // Strictly tighter for the last candidate here.
  EXPECT_LT(cands[2].bound.upper, cands_rs[2].bound.upper - 0.1);
}

TEST(VerifierChainTest, BoundsOnlyTighten) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  auto chain = MakeDefaultVerifierChain();
  std::vector<ProbabilityBound> prev(cands.size());
  for (size_t i = 0; i < cands.size(); ++i) prev[i] = cands[i].bound;
  for (const auto& v : chain) {
    v->Apply(ctx);
    for (size_t i = 0; i < cands.size(); ++i) {
      EXPECT_GE(cands[i].bound.lower, prev[i].lower - 1e-12);
      EXPECT_LE(cands[i].bound.upper, prev[i].upper + 1e-12);
      prev[i] = cands[i].bound;
    }
  }
}

TEST(FrameworkTest, StopsEarlyWhenAllDecided) {
  // With a tiny threshold every candidate satisfies after L-SR at the
  // latest; U-SR must then be skipped.
  CandidateSet cands = ThreeStaggered();
  VerificationFramework fw(&cands, CpnnParams{0.01, 0.0});
  VerificationStats stats = fw.RunDefault();
  EXPECT_EQ(stats.unknown_after, 0u);
  EXPECT_LT(stats.stages.size(), 3u);
}

TEST(FrameworkTest, StageAccountingConsistent) {
  CandidateSet cands = ThreeStaggered();
  VerificationFramework fw(&cands, CpnnParams{0.35, 0.01});
  VerificationStats stats = fw.RunDefault();
  ASSERT_FALSE(stats.stages.empty());
  for (const StageStats& st : stats.stages) {
    EXPECT_EQ(st.unknown_after + st.satisfy_after + st.fail_after,
              cands.size());
  }
  EXPECT_EQ(stats.stages.back().unknown_after, stats.unknown_after);
}

TEST(FrameworkTest, DefaultChainOrderIsRsLsrUsr) {
  auto chain = MakeDefaultVerifierChain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->name(), "RS");
  EXPECT_EQ(chain[1]->name(), "L-SR");
  EXPECT_EQ(chain[2]->name(), "U-SR");
}

// Soundness sweep: on random candidate sets, every verifier's bound must
// contain the exact probability.
class VerifierSoundnessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VerifierSoundnessTest, BoundsContainExactProbability) {
  auto [seed, pdf_kind] = GetParam();
  Rng rng(seed * 131 + pdf_kind);
  Dataset data;
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 50.0);
    double hi = lo + rng.Uniform(0.5, 30.0);
    switch (pdf_kind) {
      case 0:
        data.emplace_back(i, MakeUniformPdf(lo, hi));
        break;
      case 1:
        data.emplace_back(i, MakeGaussianPdf(lo, hi, 24));
        break;
      default: {
        std::vector<double> w;
        for (int b = 0; b < 5; ++b) w.push_back(rng.Uniform(0.05, 2.0));
        data.emplace_back(i, MakeHistogramPdf(lo, hi, w));
      }
    }
  }
  double q = rng.Uniform(-10.0, 60.0);
  std::vector<uint32_t> all(data.size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  CandidateSet cands = CandidateSet::Build1D(data, all, q);
  if (cands.empty()) return;
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  std::vector<double> exact = ComputeExactProbabilities(cands, {});

  for (const auto& v : MakeDefaultVerifierChain()) {
    v->Apply(ctx);
    for (size_t i = 0; i < cands.size(); ++i) {
      EXPECT_LE(cands[i].bound.lower, exact[i] + 1e-6)
          << v->name() << " i=" << i << " seed=" << seed;
      EXPECT_GE(cands[i].bound.upper, exact[i] - 1e-6)
          << v->name() << " i=" << i << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPdfs, VerifierSoundnessTest,
    ::testing::Combine(::testing::Range(0, 20), ::testing::Range(0, 3)));

}  // namespace
}  // namespace pverify
