#include "core/subregion_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/verifier.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

CandidateSet MakeCandidates(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (int i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 10.0);
    data.emplace_back(i, MakeUniformPdf(lo, lo + rng.Uniform(5.0, 25.0)));
  }
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) idx[i] = i;
  return CandidateSet::Build1D(data, idx, 0.0);
}

TEST(PagedStoreTest, ContentsMatchTable) {
  CandidateSet cands = MakeCandidates(40, 3);
  SubregionTable tbl = SubregionTable::Build(cands);
  PagedSubregionStore store = PagedSubregionStore::Build(tbl);
  ASSERT_EQ(store.num_subregions(), tbl.num_subregions());
  for (size_t j = 0; j < tbl.num_subregions(); ++j) {
    EXPECT_EQ(store.ListLength(j), static_cast<size_t>(tbl.count(j)));
    size_t visited = 0;
    store.ForEachEntry(j, [&](const SubregionEntry& e) {
      EXPECT_NEAR(e.s, tbl.s(e.candidate, j), 1e-15);
      EXPECT_NEAR(e.cdf, tbl.cdf(e.candidate, j), 1e-15);
      EXPECT_TRUE(tbl.Participates(e.candidate, j));
      ++visited;
    });
    EXPECT_EQ(visited, store.ListLength(j));
  }
}

TEST(PagedStoreTest, PageCountMatchesCapacity) {
  CandidateSet cands = MakeCandidates(64, 5);
  SubregionTable tbl = SubregionTable::Build(cands);
  PagedSubregionStore::Options opts;
  opts.page_bytes = 4 * sizeof(SubregionEntry);  // 4 entries per page
  PagedSubregionStore store = PagedSubregionStore::Build(tbl, opts);
  EXPECT_EQ(store.entries_per_page(), 4u);
  size_t expected_pages = 0;
  for (size_t j = 0; j < tbl.num_subregions(); ++j) {
    expected_pages += (static_cast<size_t>(tbl.count(j)) + 3) / 4;
  }
  EXPECT_EQ(store.num_pages(), expected_pages);
  EXPECT_EQ(store.StorageBytes(), expected_pages * opts.page_bytes);
}

TEST(PagedStoreTest, PageReadsAreCounted) {
  CandidateSet cands = MakeCandidates(30, 7);
  SubregionTable tbl = SubregionTable::Build(cands);
  PagedSubregionStore::Options opts;
  opts.page_bytes = 8 * sizeof(SubregionEntry);
  PagedSubregionStore store = PagedSubregionStore::Build(tbl, opts);
  EXPECT_EQ(store.page_reads(), 0u);
  size_t j = tbl.num_subregions() - 1;
  store.ForEachEntry(j, [](const SubregionEntry&) {});
  size_t expect = (store.ListLength(j) + 7) / 8;
  EXPECT_EQ(store.page_reads(), expect);
  store.ResetCounters();
  EXPECT_EQ(store.page_reads(), 0u);
}

TEST(PagedStoreTest, RsFromStoreMatchesInMemoryVerifier) {
  CandidateSet cands = MakeCandidates(50, 9);
  SubregionTable tbl = SubregionTable::Build(cands);
  PagedSubregionStore store = PagedSubregionStore::Build(tbl);
  std::vector<double> from_store =
      RsUpperBoundsFromStore(store, cands.size());

  VerificationContext ctx(&cands, &tbl);
  RsVerifier().Apply(ctx);
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_NEAR(from_store[i], cands[i].bound.upper, 1e-12) << "i=" << i;
  }
  // RS touches only the rightmost subregion's pages.
  size_t rightmost_pages =
      (store.ListLength(tbl.num_subregions() - 1) + store.entries_per_page() -
       1) /
      store.entries_per_page();
  EXPECT_EQ(store.page_reads(), rightmost_pages);
}

TEST(PagedStoreTest, TinyPagesStillCorrect) {
  CandidateSet cands = MakeCandidates(20, 11);
  SubregionTable tbl = SubregionTable::Build(cands);
  PagedSubregionStore::Options opts;
  opts.page_bytes = sizeof(SubregionEntry);  // one entry per page
  PagedSubregionStore store = PagedSubregionStore::Build(tbl, opts);
  for (size_t j = 0; j < tbl.num_subregions(); ++j) {
    size_t visited = 0;
    store.ForEachEntry(j, [&](const SubregionEntry&) { ++visited; });
    EXPECT_EQ(visited, static_cast<size_t>(tbl.count(j)));
  }
  EXPECT_THROW(
      PagedSubregionStore::Build(tbl, {.page_bytes = 1}),
      std::logic_error);
}

}  // namespace
}  // namespace pverify
