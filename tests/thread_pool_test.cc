#include "engine/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace pverify {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t worker, size_t index) {
    ASSERT_LT(worker, 4u);
    ASSERT_LT(index, n);
    hits[index].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForUsesMultipleWorkers) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<size_t> workers_seen;
  pool.ParallelFor(256, [&](size_t worker, size_t) {
    std::lock_guard<std::mutex> lock(mu);
    workers_seen.insert(worker);
  });
  // Dynamic scheduling makes the exact count nondeterministic, but every
  // reported id must be a valid worker.
  for (size_t w : workers_seen) EXPECT_LT(w, 4u);
  EXPECT_GE(workers_seen.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](size_t, size_t index) {
                                  if (index == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives and stays usable.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](size_t worker, size_t) {
    EXPECT_EQ(worker, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace pverify
