#include "uncertain/geometry2d.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pverify {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(DistancesTest, PointToRect) {
  Rect2 r{0.0, 0.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(MinDistToRect({2.0, 1.0}, r), 0.0);  // inside
  EXPECT_DOUBLE_EQ(MinDistToRect({-3.0, 1.0}, r), 3.0);  // left
  EXPECT_DOUBLE_EQ(MinDistToRect({5.0, 5.0}, r), std::hypot(1.0, 3.0));
  EXPECT_DOUBLE_EQ(MaxDistToRect({0.0, 0.0}, r), std::hypot(4.0, 2.0));
  EXPECT_DOUBLE_EQ(MaxDistToRect({2.0, 1.0}, r), std::hypot(2.0, 1.0));
}

TEST(DistancesTest, PointToCircle) {
  Circle2 c{0.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(MinDistToCircle({0.5, 0.0}, c), 0.0);  // inside
  EXPECT_DOUBLE_EQ(MinDistToCircle({5.0, 0.0}, c), 3.0);
  EXPECT_DOUBLE_EQ(MaxDistToCircle({5.0, 0.0}, c), 7.0);
  EXPECT_DOUBLE_EQ(MaxDistToCircle({0.0, 0.0}, c), 2.0);
}

TEST(CircleRectTest, RectFullyInsideDisk) {
  Rect2 r{-1.0, -1.0, 1.0, 1.0};
  EXPECT_NEAR(CircleRectIntersectionArea({0.0, 0.0}, 10.0, r), 4.0, 1e-12);
}

TEST(CircleRectTest, DiskFullyInsideRect) {
  Rect2 r{-10.0, -10.0, 10.0, 10.0};
  EXPECT_NEAR(CircleRectIntersectionArea({0.0, 0.0}, 2.0, r), kPi * 4.0,
              1e-10);
}

TEST(CircleRectTest, Disjoint) {
  Rect2 r{5.0, 5.0, 6.0, 6.0};
  EXPECT_DOUBLE_EQ(CircleRectIntersectionArea({0.0, 0.0}, 1.0, r), 0.0);
}

TEST(CircleRectTest, HalfDisk) {
  // Rectangle covering exactly the right half-plane portion of the disk.
  Rect2 r{0.0, -10.0, 10.0, 10.0};
  EXPECT_NEAR(CircleRectIntersectionArea({0.0, 0.0}, 2.0, r), kPi * 2.0,
              1e-10);
}

TEST(CircleRectTest, QuarterDisk) {
  Rect2 r{0.0, 0.0, 10.0, 10.0};
  EXPECT_NEAR(CircleRectIntersectionArea({0.0, 0.0}, 3.0, r), kPi * 9.0 / 4.0,
              1e-10);
}

TEST(CircleRectTest, ZeroRadius) {
  Rect2 r{-1.0, -1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(CircleRectIntersectionArea({0.0, 0.0}, 0.0, r), 0.0);
}

TEST(CircleCircleTest, ContainmentAndDisjoint) {
  Circle2 c{0.0, 0.0, 3.0};
  EXPECT_NEAR(CircleCircleIntersectionArea({0.0, 0.0}, 10.0, c), kPi * 9.0,
              1e-10);
  EXPECT_NEAR(CircleCircleIntersectionArea({1.0, 0.0}, 1.0, c), kPi, 1e-10);
  EXPECT_DOUBLE_EQ(CircleCircleIntersectionArea({10.0, 0.0}, 2.0, c), 0.0);
}

TEST(CircleCircleTest, EqualCirclesAtDistanceR) {
  // Two unit disks, centers one radius apart; classic lens area
  // 2·acos(1/2) − (√3)/2.
  Circle2 c{1.0, 0.0, 1.0};
  double expect = 2.0 * std::acos(0.5) - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(CircleCircleIntersectionArea({0.0, 0.0}, 1.0, c), expect,
              1e-10);
}

// Monte-Carlo cross-check of the exact intersection areas.
class AreaMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(AreaMonteCarloTest, CircleRectMatchesSampling) {
  Rng rng(GetParam() * 31 + 5);
  Rect2 rect;
  rect.x1 = rng.Uniform(-5.0, 0.0);
  rect.y1 = rng.Uniform(-5.0, 0.0);
  rect.x2 = rect.x1 + rng.Uniform(0.5, 6.0);
  rect.y2 = rect.y1 + rng.Uniform(0.5, 6.0);
  Point2 q{rng.Uniform(-4.0, 4.0), rng.Uniform(-4.0, 4.0)};
  double r = rng.Uniform(0.5, 5.0);

  double exact = CircleRectIntersectionArea(q, r, rect);

  const int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    Point2 p{rng.Uniform(rect.x1, rect.x2), rng.Uniform(rect.y1, rect.y2)};
    if (Distance(p, q) <= r) ++hits;
  }
  double mc = rect.Area() * hits / kSamples;
  double sigma = rect.Area() * std::sqrt(0.25 / kSamples);
  EXPECT_NEAR(exact, mc, 6.0 * sigma + 1e-6);
}

TEST_P(AreaMonteCarloTest, CircleCircleMatchesSampling) {
  Rng rng(GetParam() * 17 + 3);
  Circle2 c{rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0),
            rng.Uniform(0.5, 3.0)};
  Point2 q{rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
  double r = rng.Uniform(0.5, 4.0);

  double exact = CircleCircleIntersectionArea(q, r, c);

  const int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    // Uniform in the bounding box of circle c, count points in both disks.
    Point2 p{rng.Uniform(c.cx - c.r, c.cx + c.r),
             rng.Uniform(c.cy - c.r, c.cy + c.r)};
    if (Distance(p, {c.cx, c.cy}) <= c.r && Distance(p, q) <= r) ++hits;
  }
  double box = 4.0 * c.r * c.r;
  double mc = box * hits / kSamples;
  double sigma = box * std::sqrt(0.25 / kSamples);
  EXPECT_NEAR(exact, mc, 6.0 * sigma + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AreaMonteCarloTest, ::testing::Range(0, 8));

// The batched merge-scan variants must produce bit-for-bit the same doubles
// as per-radius single-shot calls — that is their documented contract (the
// radial-cdf build switched to them, and answers must not move).
TEST(BatchedAreaTest, CircleRectBatchedBitIdenticalToSingleShot) {
  Rng rng(41);
  std::vector<double> cuts;
  for (int t = 0; t < 20; ++t) {
    Rect2 rect;
    rect.x1 = rng.Uniform(-5.0, 0.0);
    rect.y1 = rng.Uniform(-5.0, 0.0);
    rect.x2 = rect.x1 + rng.Uniform(0.5, 6.0);
    rect.y2 = rect.y1 + rng.Uniform(0.5, 6.0);
    Point2 q{rng.Uniform(-4.0, 4.0), rng.Uniform(-4.0, 4.0)};

    // Ascending grid spanning disjoint through fully-containing radii,
    // including r = 0 and an exact repeat of the previous radius.
    std::vector<double> rs;
    double r = 0.0;
    for (int i = 0; i < 24; ++i) {
      rs.push_back(r);
      if (i == 10) rs.push_back(r);  // duplicate radius
      r += rng.Uniform(0.0, 1.5);
    }
    std::vector<double> got(rs.size(), -1.0);
    CircleRectIntersectionAreas(q, rs.data(), rs.size(), rect, got.data(),
                                cuts);
    for (size_t i = 0; i < rs.size(); ++i) {
      double expect = CircleRectIntersectionArea(q, rs[i], rect);
      EXPECT_EQ(got[i], expect) << "t=" << t << " i=" << i << " r=" << rs[i];
    }
  }
}

TEST(BatchedAreaTest, CircleCircleBatchedBitIdenticalToSingleShot) {
  Rng rng(43);
  for (int t = 0; t < 20; ++t) {
    Circle2 c{rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0),
              rng.Uniform(0.5, 3.0)};
    Point2 q{rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    std::vector<double> rs;
    double r = 0.0;
    for (int i = 0; i < 24; ++i) {
      rs.push_back(r);
      r += rng.Uniform(0.0, 1.0);
    }
    std::vector<double> got(rs.size(), -1.0);
    CircleCircleIntersectionAreas(q, rs.data(), rs.size(), c, got.data());
    for (size_t i = 0; i < rs.size(); ++i) {
      double expect = CircleCircleIntersectionArea(q, rs[i], c);
      EXPECT_EQ(got[i], expect) << "t=" << t << " i=" << i << " r=" << rs[i];
    }
  }
}

TEST(BatchedAreaTest, NegativeRadiusStillRejected) {
  Rect2 rect{0.0, 0.0, 2.0, 2.0};
  Circle2 c{0.0, 0.0, 1.0};
  const double rs[] = {0.5, -1.0};
  double out[2];
  std::vector<double> cuts;
  EXPECT_THROW(CircleRectIntersectionAreas({0, 0}, rs, 2, rect, out, cuts),
               std::logic_error);
  EXPECT_THROW(CircleCircleIntersectionAreas({0, 0}, rs, 2, c, out),
               std::logic_error);
}

// Area is monotone in r — required for valid radial cdfs.
TEST(CircleRectTest, MonotoneInRadius) {
  Rect2 rect{0.0, 0.0, 3.0, 2.0};
  Point2 q{-1.0, 1.0};
  double prev = 0.0;
  for (double r = 0.0; r <= 6.0; r += 0.05) {
    double a = CircleRectIntersectionArea(q, r, rect);
    EXPECT_GE(a, prev - 1e-12);
    prev = a;
  }
  EXPECT_NEAR(prev, rect.Area(), 1e-9);
}

}  // namespace
}  // namespace pverify
