#include "uncertain/distance_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

// Paper Fig. 6(b): query inside the uncertainty region. For uniform [l, u]
// and q with q−l < u−q, the distance pdf is 2/(u−l) on [0, q−l] and 1/(u−l)
// on [q−l, u−q].
TEST(DistanceDistributionTest, UniformQueryInsideFig6b) {
  Pdf pdf = MakeUniformPdf(0.0, 10.0);
  double q = 3.0;
  DistanceDistribution d = DistanceDistribution::From1D(pdf, q);
  EXPECT_DOUBLE_EQ(d.near(), 0.0);
  EXPECT_DOUBLE_EQ(d.far(), 7.0);
  EXPECT_NEAR(d.Density(1.0), 2.0 / 10.0, 1e-12);
  EXPECT_NEAR(d.Density(5.0), 1.0 / 10.0, 1e-12);
  EXPECT_NEAR(d.Cdf(3.0), 6.0 / 10.0, 1e-12);
  EXPECT_NEAR(d.Cdf(7.0), 1.0, 1e-12);
  EXPECT_NEAR(d.ProbIn(0.0, 7.0), 1.0, 1e-12);
}

// Paper Fig. 6(c): query outside the region — the distance pdf is a shifted
// copy of the value pdf.
TEST(DistanceDistributionTest, UniformQueryOutside) {
  Pdf pdf = MakeUniformPdf(4.0, 9.0);
  double q = 1.0;
  DistanceDistribution d = DistanceDistribution::From1D(pdf, q);
  EXPECT_DOUBLE_EQ(d.near(), 3.0);
  EXPECT_DOUBLE_EQ(d.far(), 8.0);
  EXPECT_NEAR(d.Density(5.0), 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(d.Cdf(5.5), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(9.0), 1.0);
}

TEST(DistanceDistributionTest, UniformQueryRightOfRegion) {
  Pdf pdf = MakeUniformPdf(4.0, 9.0);
  double q = 12.0;
  DistanceDistribution d = DistanceDistribution::From1D(pdf, q);
  EXPECT_DOUBLE_EQ(d.near(), 3.0);
  EXPECT_DOUBLE_EQ(d.far(), 8.0);
  EXPECT_NEAR(d.ProbIn(3.0, 8.0), 1.0, 1e-12);
}

TEST(DistanceDistributionTest, QueryAtRegionCenterFoldsSymmetrically) {
  Pdf pdf = MakeUniformPdf(0.0, 10.0);
  DistanceDistribution d = DistanceDistribution::From1D(pdf, 5.0);
  EXPECT_DOUBLE_EQ(d.near(), 0.0);
  EXPECT_DOUBLE_EQ(d.far(), 5.0);
  EXPECT_NEAR(d.Density(2.0), 2.0 / 10.0, 1e-12);
  EXPECT_NEAR(d.Cdf(2.5), 0.5, 1e-12);
}

TEST(DistanceDistributionTest, QueryAtBoundary) {
  Pdf pdf = MakeUniformPdf(2.0, 5.0);
  DistanceDistribution d = DistanceDistribution::From1D(pdf, 2.0);
  EXPECT_DOUBLE_EQ(d.near(), 0.0);
  EXPECT_DOUBLE_EQ(d.far(), 3.0);
  EXPECT_NEAR(d.Density(1.0), 1.0 / 3.0, 1e-12);
}

TEST(DistanceDistributionTest, HistogramFoldOverlapsBars) {
  // Two equal-mass bars: [0,1] and [1,2]; query at 1 folds both onto [0,1].
  Pdf pdf = MakeHistogramPdf(0.0, 2.0, {1.0, 1.0});
  DistanceDistribution d = DistanceDistribution::From1D(pdf, 1.0);
  EXPECT_DOUBLE_EQ(d.near(), 0.0);
  EXPECT_DOUBLE_EQ(d.far(), 1.0);
  EXPECT_NEAR(d.Density(0.5), 1.0, 1e-12);
  EXPECT_NEAR(d.Cdf(0.5), 0.5, 1e-12);
}

TEST(DistanceDistributionTest, AsymmetricHistogramFold) {
  // Mass 0.75 in [0,1], 0.25 in [1,2]; query at 1.
  Pdf pdf = MakeHistogramPdf(0.0, 2.0, {3.0, 1.0});
  DistanceDistribution d = DistanceDistribution::From1D(pdf, 1.0);
  // Folded density on [0,1]: 0.75 + 0.25 = 1.0.
  EXPECT_NEAR(d.Density(0.3), 1.0, 1e-12);
  EXPECT_NEAR(d.ProbIn(0.0, 1.0), 1.0, 1e-12);
}

TEST(DistanceDistributionTest, GaussianFoldPreservesMass) {
  Pdf pdf = MakeGaussianPdf(10.0, 70.0);  // 300 bars
  for (double q : {0.0, 10.0, 25.0, 40.0, 55.0, 70.0, 90.0}) {
    DistanceDistribution d = DistanceDistribution::From1D(pdf, q);
    EXPECT_NEAR(d.ProbIn(d.near(), d.far()), 1.0, 1e-9) << "q=" << q;
    EXPECT_GE(d.near(), 0.0);
    EXPECT_GT(d.far(), d.near());
  }
}

TEST(DistanceDistributionTest, CdfMatchesDirectProbability) {
  // D(r) must equal P(|X−q| <= r) computed from the raw pdf.
  Pdf pdf = MakeHistogramPdf(0.0, 8.0, {1.0, 2.0, 0.5, 4.0});
  double q = 3.0;
  DistanceDistribution d = DistanceDistribution::From1D(pdf, q);
  for (double r : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    double direct = pdf.ProbIn(q - r, q + r);
    EXPECT_NEAR(d.Cdf(r), direct, 1e-12) << "r=" << r;
  }
}

TEST(DistanceDistributionTest, QuantileSamplingMatchesCdf) {
  Pdf pdf = MakeGaussianPdf(0.0, 30.0, 100);
  DistanceDistribution d = DistanceDistribution::From1D(pdf, 12.0);
  Rng rng(3);
  int below = 0;
  const int kSamples = 20000;
  double r0 = d.Quantile(0.7);
  for (int i = 0; i < kSamples; ++i) {
    if (d.Quantile(rng.Uniform(0.0, 1.0)) <= r0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kSamples, 0.7, 0.02);
}

TEST(DistanceDistributionTest, RejectsUnnormalizedInput) {
  StepFunction not_a_pdf = StepFunction::Constant(0.0, 1.0, 2.0);  // mass 2
  EXPECT_THROW(DistanceDistribution{not_a_pdf}, std::logic_error);
}

class FoldMassPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FoldMassPropertyTest, MassAndSupportInvariants) {
  auto [seed, kind] = GetParam();
  Rng rng(seed * 7919 + kind);
  double lo = rng.Uniform(-50.0, 50.0);
  double hi = lo + rng.Uniform(0.5, 40.0);
  Pdf pdf = [&]() {
    switch (kind) {
      case 0:
        return MakeUniformPdf(lo, hi);
      case 1:
        return MakeGaussianPdf(lo, hi, 60);
      default: {
        std::vector<double> w;
        for (int i = 0; i < 7; ++i) w.push_back(rng.Uniform(0.01, 3.0));
        return MakeHistogramPdf(lo, hi, w);
      }
    }
  }();
  double q = rng.Uniform(lo - 20.0, hi + 20.0);
  DistanceDistribution d = DistanceDistribution::From1D(pdf, q);
  // Mass preserved.
  EXPECT_NEAR(d.ProbIn(d.near(), d.far()), 1.0, 1e-9);
  // Support equals the min/max possible distance.
  double expect_near = (q < lo) ? lo - q : (q > hi ? q - hi : 0.0);
  double expect_far = std::max(std::abs(q - lo), std::abs(q - hi));
  EXPECT_NEAR(d.near(), expect_near, 1e-9);
  EXPECT_NEAR(d.far(), expect_far, 1e-9);
  // Cdf is monotone in r.
  double prev = -1.0;
  for (int i = 0; i <= 20; ++i) {
    double r = d.near() + (d.far() - d.near()) * i / 20.0;
    double c = d.Cdf(r);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKinds, FoldMassPropertyTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 3)));

}  // namespace
}  // namespace pverify
