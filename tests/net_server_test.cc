// Loopback tests of the pverify_serve stack: a real Server on an ephemeral
// port, real Clients, and the differential harness asserting that every
// answer a client reads off the wire is bit-identical to local execution.
// Also covers the failure matrix the protocol promises: malformed frames
// drop only their own connection, request-level errors keep it open, the
// connection cap rejects politely, and a caching server marks replays.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "differential_testutil.h"
#include "engine/caching_engine.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"

namespace pverify {
namespace {

constexpr char kLoopback[] = "127.0.0.1";

Dataset TestDataset() { return datagen::MakeUniformScatter(400, 1000.0); }

Dataset2D TestDataset2D() {
  datagen::Synthetic2DConfig config;
  config.count = 120;
  return datagen::MakeSynthetic2D(config);
}

QueryOptions TestOptions() {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  return opt;
}

EngineOptions SmallEngine() {
  EngineOptions eopt;
  eopt.num_threads = 2;
  return eopt;
}

/// Engine adapter over a net::Client, so RunDifferentialStream can drive a
/// remote server exactly like any local backend. Execute round-trips one
/// frame; ExecuteBatch pipelines the lot. Telemetry accessors return zeros
/// (they describe local pools, which a remote proxy does not have).
class RemoteEngine : public Engine {
 public:
  RemoteEngine(const std::string& host, uint16_t port)
      : client_(net::Client::Connect(host, port)) {}

  size_t num_threads() const override { return 0; }

  QueryResult Execute(QueryRequest request) override {
    uint64_t id = client_.Send(request);
    return Unwrap(client_.Await(id));
  }

  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats) override {
    std::vector<net::ServeResponse> responses = client_.Call(requests);
    std::vector<QueryResult> results;
    results.reserve(responses.size());
    for (net::ServeResponse& r : responses) {
      results.push_back(Unwrap(std::move(r)));
    }
    if (stats != nullptr) {
      *stats = EngineStats{};
      for (const QueryResult& r : results) {
        AccumulateBatchResult(r.stats, stats);
      }
    }
    return results;
  }

  std::future<QueryResult> Submit(QueryRequest request) override {
    std::promise<QueryResult> promise;
    std::future<QueryResult> future = promise.get_future();
    try {
      promise.set_value(Execute(std::move(request)));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    return future;
  }

  SubmitQueueStats SubmitStats() const override { return {}; }
  size_t ScratchQueriesServed() const override { return 0; }
  size_t ScratchBytes() const override { return 0; }

  net::Client& client() { return client_; }

 private:
  static QueryResult Unwrap(net::ServeResponse response) {
    if (!response.ok) {
      throw net::WireError("remote error: " + response.error);
    }
    return std::move(response.result);
  }

  net::Client client_;
};

TEST(NetServerTest, ServedAnswersMatchLocalExecutionBitIdentically) {
  Dataset data = TestDataset();
  QueryEngine local(data, SmallEngine());
  QueryEngine served(std::move(data), SmallEngine());
  net::Server server(served);
  server.Start();

  const QueryOptions opt = TestOptions();
  const std::vector<double> points =
      datagen::MakeQueryPoints(6, 0.0, 1000.0, /*seed=*/19);
  std::vector<testutil::RequestFactory> stream =
      testutil::MakeMixedKindStream(points, opt);

  RemoteEngine remote(kLoopback, server.port());
  testutil::NamedEngine named{"remote", &remote};
  // max_ulps = 0: what the client decodes off the wire must be the exact
  // doubles local execution produces.
  testutil::RunDifferentialStream(local, {named}, stream,
                                  {/*rounds=*/2, /*exercise_submit=*/false,
                                   /*max_ulps=*/0});
}

TEST(NetServerTest, DualModeServerAnswersTwoDimensionalKinds) {
  Dataset data = TestDataset();
  Dataset2D data2d = TestDataset2D();
  QueryEngine local(data, data2d, SmallEngine());
  QueryEngine served(std::move(data), std::move(data2d), SmallEngine());
  net::Server server(served);
  server.Start();

  const QueryOptions opt = TestOptions();
  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(5, 0.0, 1000.0, /*seed=*/23);

  RemoteEngine remote(kLoopback, server.port());
  for (const Point2& q : points) {
    QueryResult expected = local.Execute(Point2DQuery{q, opt});
    QueryResult got = remote.Execute(Point2DQuery{q, opt});
    testutil::ExpectEquivalentResult(expected, got, 0, "point2d");

    QueryResult expected_knn = local.Execute(Knn2DQuery{q, 3, opt});
    QueryResult got_knn = remote.Execute(Knn2DQuery{q, 3, opt});
    testutil::ExpectEquivalentResult(expected_knn, got_knn, 0, "knn2d");
  }
}

TEST(NetServerTest, ResponsesDemuxOutOfAwaitOrder) {
  Dataset data = TestDataset();
  QueryEngine local(data, SmallEngine());
  QueryEngine served(std::move(data), SmallEngine());
  net::Server server(served);
  server.Start();

  const QueryOptions opt = TestOptions();
  const std::vector<double> points =
      datagen::MakeQueryPoints(8, 0.0, 1000.0, /*seed=*/29);

  net::Client client = net::Client::Connect(kLoopback, server.port());
  std::vector<uint64_t> ids;
  for (double q : points) {
    ids.push_back(client.Send(QueryRequest(PointQuery{q, opt})));
  }
  // Await in reverse send order: the stash buffers earlier arrivals.
  for (size_t i = points.size(); i-- > 0;) {
    net::ServeResponse response = client.Await(ids[i]);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.request_id, ids[i]);
    QueryResult expected = local.Execute(PointQuery{points[i], opt});
    testutil::ExpectEquivalentResult(expected, response.result, 0,
                                     "reverse await " + std::to_string(i));
  }
}

TEST(NetServerTest, ConcurrentConnectionsAllMatchLocal) {
  Dataset data = TestDataset();
  QueryEngine local(data, SmallEngine());
  QueryEngine served(std::move(data), SmallEngine());
  net::Server server(served);
  server.Start();

  const QueryOptions opt = TestOptions();
  const std::vector<double> points =
      datagen::MakeQueryPoints(5, 0.0, 1000.0, /*seed=*/31);
  std::vector<QueryResult> expected;
  for (double q : points) {
    expected.push_back(local.Execute(PointQuery{q, opt}));
  }

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      net::Client client = net::Client::Connect(kLoopback, server.port());
      std::vector<QueryRequest> batch;
      for (double q : points) batch.push_back(PointQuery{q, opt});
      std::vector<net::ServeResponse> responses = client.Call(batch);
      if (responses.size() != expected.size()) {
        ++failures;
        return;
      }
      for (size_t i = 0; i < responses.size(); ++i) {
        if (!responses[i].ok ||
            responses[i].result.ids != expected[i].ids) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.stats().connections_accepted, (uint64_t)kClients);
}

TEST(NetServerTest, MalformedFrameDropsOnlyThatConnection) {
  Dataset data = TestDataset();
  QueryEngine served(std::move(data), SmallEngine());
  net::Server server(served);
  server.Start();

  {
    // 20 bytes of garbage: the header decoder rejects the magic, the
    // server answers with one error frame and hangs up.
    net::Socket raw = net::ConnectTcp(kLoopback, server.port());
    uint8_t garbage[net::kFrameHeaderBytes];
    for (size_t i = 0; i < sizeof(garbage); ++i) {
      garbage[i] = static_cast<uint8_t>(0xa5);
    }
    raw.WriteAll(garbage, sizeof(garbage));
    net::ReceivedFrame frame;
    ASSERT_TRUE(
        net::ReceiveFrame(raw, net::kDefaultMaxBodyBytes, &frame));
    EXPECT_EQ(frame.header.type, net::MessageType::kError);
    net::WireReader reader(frame.body.data(), frame.body.size());
    net::DecodedError err = net::DecodeErrorBody(
        frame.header.version, reader, net::kDefaultMaxBodyBytes);
    EXPECT_EQ(err.code, net::ErrorCode::kProtocol);
    // After the error frame the server closes: the next read is EOF.
    uint8_t byte;
    EXPECT_FALSE(raw.ReadExact(&byte, 1));
  }
  {
    // A header truncated by a disappearing peer is dropped silently.
    net::Socket raw = net::ConnectTcp(kLoopback, server.port());
    uint8_t partial[5] = {1, 2, 3, 4, 5};
    raw.WriteAll(partial, sizeof(partial));
  }

  // The server survives both: a well-behaved client still gets answers.
  net::Client client = net::Client::Connect(kLoopback, server.port());
  uint64_t id =
      client.Send(QueryRequest(PointQuery{500.0, TestOptions()}));
  net::ServeResponse response = client.Await(id);
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(NetServerTest, ConnectionCapRejectsPolitely) {
  Dataset data = TestDataset();
  QueryEngine served(std::move(data), SmallEngine());
  net::ServerOptions sopt;
  sopt.max_connections = 1;
  net::Server server(served, sopt);
  server.Start();

  net::Client first = net::Client::Connect(kLoopback, server.port());
  uint64_t id = first.Send(QueryRequest(PointQuery{500.0, TestOptions()}));
  ASSERT_TRUE(first.Await(id).ok);

  // The second connection gets a kError frame, then EOF.
  net::Client second = net::Client::Connect(kLoopback, server.port());
  net::ServeResponse rejection = second.ReadNext();
  EXPECT_FALSE(rejection.ok);
  // The rejection is a typed error the client can branch on, not an EOF.
  EXPECT_EQ(rejection.code, net::ErrorCode::kOverloaded);
  EXPECT_NE(rejection.error.find("connection limit"), std::string::npos)
      << rejection.error;
  EXPECT_EQ(server.stats().connections_rejected, 1u);

  // The first connection is unaffected.
  uint64_t id2 = first.Send(QueryRequest(PointQuery{250.0, TestOptions()}));
  EXPECT_TRUE(first.Await(id2).ok);
}

TEST(NetServerTest, RequestLevelErrorKeepsConnectionOpen) {
  // A 1-D-only engine rejects 2-D kinds at execution time; that is the
  // request's failure, not the connection's.
  Dataset data = TestDataset();
  QueryEngine served(std::move(data), SmallEngine());
  net::Server server(served);
  server.Start();

  net::Client client = net::Client::Connect(kLoopback, server.port());
  uint64_t bad =
      client.Send(QueryRequest(Point2DQuery{{1.0, 2.0}, TestOptions()}));
  net::ServeResponse error = client.Await(bad);
  EXPECT_FALSE(error.ok);
  EXPECT_EQ(error.request_id, bad);
  EXPECT_FALSE(error.error.empty());

  uint64_t good =
      client.Send(QueryRequest(PointQuery{500.0, TestOptions()}));
  net::ServeResponse response = client.Await(good);
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(server.stats().request_errors, 1u);
}

TEST(NetServerTest, CachingServerMarksReplaysAndStaysExact) {
  Dataset data = TestDataset();
  QueryEngine local(data, SmallEngine());
  CachingEngineOptions copt;
  copt.capacity = 64;
  std::unique_ptr<CachingEngine> served = MakeCachingEngine(
      std::make_unique<QueryEngine>(std::move(data), SmallEngine()), copt);
  net::Server server(*served);
  server.Start();

  const QueryOptions opt = TestOptions();
  net::Client client = net::Client::Connect(kLoopback, server.port());
  QueryResult expected = local.Execute(PointQuery{321.0, opt});

  uint64_t cold = client.Send(QueryRequest(PointQuery{321.0, opt}));
  net::ServeResponse first = client.Await(cold);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.result.stats.served_from_cache);
  testutil::ExpectEquivalentResult(expected, first.result, 0, "cold");

  uint64_t warm = client.Send(QueryRequest(PointQuery{321.0, opt}));
  net::ServeResponse second = client.Await(warm);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.result.stats.served_from_cache);
  // The memoized answer crosses the wire bit-identical too.
  testutil::ExpectEquivalentResult(expected, second.result, 0, "warm");
}

TEST(NetServerTest, StopWithConnectedClientsShutsDownCleanly) {
  Dataset data = TestDataset();
  QueryEngine served(std::move(data), SmallEngine());
  auto server = std::make_unique<net::Server>(served);
  server->Start();

  net::Client client = net::Client::Connect(kLoopback, server->port());
  uint64_t id = client.Send(QueryRequest(PointQuery{500.0, TestOptions()}));
  ASSERT_TRUE(client.Await(id).ok);

  // Stop with the client still connected: joins must not hang, and the
  // client sees the connection end rather than a stuck read.
  server->Stop();
  EXPECT_THROW(
      {
        // At most one buffered read can still succeed; a bounded number of
        // reads must hit the teardown.
        for (int i = 0; i < 3; ++i) client.ReadNext();
      },
      net::WireError);
}

}  // namespace
}  // namespace pverify
