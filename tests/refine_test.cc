#include "core/refine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/basic.h"
#include "core/classifier.h"
#include "core/framework.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

CandidateSet MakeCandidates(int n, uint64_t seed, double* q_out = nullptr) {
  Rng rng(seed);
  Dataset data;
  for (int i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 30.0);
    data.emplace_back(i, MakeUniformPdf(lo, lo + rng.Uniform(1.0, 15.0)));
  }
  std::vector<uint32_t> idx;
  for (int i = 0; i < n; ++i) idx.push_back(i);
  double q = rng.Uniform(0.0, 35.0);
  if (q_out != nullptr) *q_out = q;
  return CandidateSet::Build1D(data, idx, q);
}

TEST(ExactSubregionTest, WeightedSumEqualsBasicProbability) {
  CandidateSet cands = MakeCandidates(6, 11);
  ASSERT_FALSE(cands.empty());
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  IntegrationOptions opts;
  for (size_t i = 0; i < cands.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j + 1 < tbl.num_subregions(); ++j) {
      if (!tbl.Participates(i, j)) continue;
      sum += tbl.s(i, j) * ExactSubregionProbability(ctx, i, j, opts);
    }
    EXPECT_NEAR(sum, exact[i], 1e-6) << "i=" << i;
  }
}

TEST(ExactSubregionTest, ConditionalProbabilityInUnitRange) {
  CandidateSet cands = MakeCandidates(8, 13);
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = 0; j + 1 < tbl.num_subregions(); ++j) {
      if (!tbl.Participates(i, j)) continue;
      double q = ExactSubregionProbability(ctx, i, j, {});
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST(ExactSubregionTest, WithinVerifierBounds) {
  CandidateSet cands = MakeCandidates(7, 17);
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  LsrVerifier().Apply(ctx);
  UsrVerifier().Apply(ctx);
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = 0; j + 1 < tbl.num_subregions(); ++j) {
      if (!tbl.Participates(i, j)) continue;
      double q = ExactSubregionProbability(ctx, i, j, {});
      EXPECT_GE(q, ctx.QLow(i, j) - 1e-6) << "i=" << i << " j=" << j;
      EXPECT_LE(q, ctx.QUp(i, j) + 1e-6) << "i=" << i << " j=" << j;
    }
  }
}

TEST(IncrementalRefineTest, DecidesEveryCandidate) {
  CandidateSet cands = MakeCandidates(10, 19);
  CpnnParams params{0.3, 0.01};
  VerificationFramework fw(&cands, params);
  fw.RunDefault();
  RefineStats rs = IncrementalRefine(fw.context(), params, {});
  for (const Candidate& c : cands.items()) {
    EXPECT_NE(c.label, Label::kUnknown);
  }
  EXPECT_LE(rs.subregion_integrations, rs.subregions_available);
}

TEST(IncrementalRefineTest, AgreesWithBasicGroundTruth) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    CandidateSet cands = MakeCandidates(9, seed);
    if (cands.empty()) continue;
    CandidateSet ground = cands;  // copy before labels change
    CpnnParams params{0.25, 0.0};  // zero tolerance → answers must be exact
    VerificationFramework fw(&cands, params);
    fw.RunDefault();
    IncrementalRefine(fw.context(), params, {});
    std::vector<double> exact = ComputeExactProbabilities(ground, {});
    for (size_t i = 0; i < cands.size(); ++i) {
      bool in_answer = cands[i].label == Label::kSatisfy;
      if (exact[i] > params.threshold + 1e-6) {
        EXPECT_TRUE(in_answer) << "seed=" << seed << " i=" << i;
      }
      if (exact[i] < params.threshold - 1e-6) {
        EXPECT_FALSE(in_answer) << "seed=" << seed << " i=" << i;
      }
    }
  }
}

TEST(IncrementalRefineTest, ToleranceAllowsBoundedError) {
  for (uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    CandidateSet cands = MakeCandidates(12, seed);
    if (cands.empty()) continue;
    CandidateSet ground = cands;
    CpnnParams params{0.3, 0.05};
    VerificationFramework fw(&cands, params);
    fw.RunDefault();
    IncrementalRefine(fw.context(), params, {});
    std::vector<double> exact = ComputeExactProbabilities(ground, {});
    for (size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].label == Label::kSatisfy) {
        // Definition 1 guarantees p >= P − Δ for every returned object.
        EXPECT_GE(exact[i], params.threshold - params.tolerance - 1e-6);
      } else {
        // And p < P for every rejected object.
        EXPECT_LT(exact[i], params.threshold + 1e-6);
      }
    }
  }
}

TEST(IncrementalRefineTest, BothOrdersProduceValidAnswers) {
  for (RefineOrder order : {RefineOrder::kBySubregionProbability,
                            RefineOrder::kLeftToRight}) {
    CandidateSet cands = MakeCandidates(10, 31);
    CandidateSet ground = cands;
    CpnnParams params{0.3, 0.0};
    VerificationFramework fw(&cands, params);
    fw.RunDefault();
    IncrementalRefine(fw.context(), params, {}, order);
    std::vector<double> exact = ComputeExactProbabilities(ground, {});
    for (size_t i = 0; i < cands.size(); ++i) {
      if (exact[i] > params.threshold + 1e-6) {
        EXPECT_EQ(cands[i].label, Label::kSatisfy);
      }
      if (exact[i] < params.threshold - 1e-6) {
        EXPECT_EQ(cands[i].label, Label::kFail);
      }
    }
  }
}

TEST(IncrementalRefineTest, EarlyStopSavesIntegrations) {
  // With verifiers first and a generous tolerance, refinement should stop
  // before exhausting the subregions.
  CandidateSet cands = MakeCandidates(14, 41);
  CpnnParams params{0.3, 0.1};
  VerificationFramework fw(&cands, params);
  fw.RunDefault();
  RefineStats rs = IncrementalRefine(fw.context(), params, {});
  if (rs.refined_candidates > 0) {
    EXPECT_LT(rs.subregion_integrations, rs.subregions_available);
  }
}

TEST(IncrementalRefineTest, NoUnknownNoWork) {
  CandidateSet cands = MakeCandidates(5, 51);
  CpnnParams params{0.0001, 1.0};  // everything satisfies instantly
  VerificationFramework fw(&cands, params);
  fw.RunDefault();
  RefineStats rs = IncrementalRefine(fw.context(), params, {});
  EXPECT_EQ(rs.refined_candidates, 0u);
  EXPECT_EQ(rs.subregion_integrations, 0u);
}

}  // namespace
}  // namespace pverify
