#include "core/range_query.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"

namespace pverify {
namespace {

Dataset ThreeObjects() {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 4.0));
  data.emplace_back(1, MakeUniformPdf(2.0, 6.0));
  data.emplace_back(2, MakeUniformPdf(10.0, 12.0));
  return data;
}

TEST(RangeQueryTest, ExactProbabilities) {
  Dataset data = ThreeObjects();
  auto results = EvaluateRangeQuery(data, 1.0, 3.0);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 0);
  EXPECT_NEAR(results[0].probability, 0.5, 1e-12);  // [1,3] of [0,4]
  EXPECT_EQ(results[1].id, 1);
  EXPECT_NEAR(results[1].probability, 0.25, 1e-12);  // [2,3] of [2,6]
}

TEST(RangeQueryTest, ThresholdFilters) {
  Dataset data = ThreeObjects();
  auto results = EvaluateRangeQuery(data, 1.0, 3.0, 0.4);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 0);
}

TEST(RangeQueryTest, FullCoverageIsCertain) {
  Dataset data = ThreeObjects();
  auto results = EvaluateRangeQuery(data, -100.0, 100.0);
  ASSERT_EQ(results.size(), 3u);
  for (const RangeResult& r : results) {
    EXPECT_NEAR(r.probability, 1.0, 1e-12);
  }
}

TEST(RangeQueryTest, DisjointRangeIsEmpty) {
  Dataset data = ThreeObjects();
  EXPECT_TRUE(EvaluateRangeQuery(data, 20.0, 30.0).empty());
}

TEST(RangeQueryTest, DegenerateRangeRejected) {
  Dataset data = ThreeObjects();
  EXPECT_THROW(EvaluateRangeQuery(data, 3.0, 1.0), std::logic_error);
}

TEST(RangeQueryTest, GaussianPdfProbability) {
  Dataset data;
  data.emplace_back(0, MakeGaussianPdf(0.0, 6.0));  // mean 3, sd 1
  auto results = EvaluateRangeQuery(data, 2.0, 4.0);
  ASSERT_EQ(results.size(), 1u);
  double z = StandardNormalCdf(1.0) - StandardNormalCdf(-1.0);
  double truncation = StandardNormalCdf(3.0) - StandardNormalCdf(-3.0);
  EXPECT_NEAR(results[0].probability, z / truncation, 1e-3);
}

TEST(RangeQueryExecutorTest, MatchesScanOnSyntheticData) {
  Dataset data = datagen::MakeUniformScatter(2000, 1000.0, 5.0, 17);
  RangeQueryExecutor exec(data);
  Rng rng(19);
  for (int t = 0; t < 20; ++t) {
    double lo = rng.Uniform(0.0, 990.0);
    double hi = lo + rng.Uniform(0.0, 50.0);
    double threshold = rng.Uniform(0.0, 0.8);
    auto via_tree = exec.Execute(lo, hi, threshold);
    auto via_scan = EvaluateRangeQuery(data, lo, hi, threshold);
    ASSERT_EQ(via_tree.size(), via_scan.size()) << "t=" << t;
    for (size_t i = 0; i < via_tree.size(); ++i) {
      EXPECT_EQ(via_tree[i].id, via_scan[i].id);
      EXPECT_NEAR(via_tree[i].probability, via_scan[i].probability, 1e-12);
    }
  }
}

TEST(RangeQueryExecutorTest, AppearanceProbabilitiesAreMarginal) {
  // Unlike PNN probabilities, range probabilities need not sum to 1.
  Dataset data = ThreeObjects();
  RangeQueryExecutor exec(data);
  auto results = exec.Execute(0.0, 12.0);
  double sum = 0.0;
  for (const RangeResult& r : results) sum += r.probability;
  EXPECT_NEAR(sum, 3.0, 1e-12);
}

}  // namespace
}  // namespace pverify
