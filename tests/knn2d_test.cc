// 2-D constrained k-NN through the engine stack: CpnnExecutor2D::ExecuteKnn
// vs. the scan filter's invariants, Knn2DQuery pinned bit-identical to the
// executor through QueryEngine (batch/submit/serial), and the sharded
// KnnScatterPolicy<2> instantiation pinned bit-identical to the unsharded
// answer at 1/2/4 shards under both sharding policies.
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query2d.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "spatial/filter.h"

namespace pverify {
namespace {

Dataset2D TestDataset2D(size_t count = 240, uint64_t seed = 31) {
  datagen::Synthetic2DConfig config;
  config.count = count;
  config.mean_extent = 30.0;
  config.max_extent = 120.0;
  config.seed = seed;
  return datagen::MakeSynthetic2D(config);
}

Dataset2D ClusteredDataset2D() {
  datagen::Synthetic2DClusteredConfig config;
  config.count = 160;
  config.domain = 10000.0;
  config.num_clusters = 4;
  config.cluster_stddev = 150.0;
  config.mean_extent = 4.0;
  config.max_extent = 12.0;
  config.seed = 51;
  return datagen::MakeSynthetic2DClustered(config);
}

QueryOptions TestOptions() {
  QueryOptions opt;
  opt.params = {0.2, 0.01};
  return opt;
}

std::shared_ptr<const ShardingPolicy> MakePolicy2D(const std::string& name,
                                                   const Dataset2D& data) {
  if (name == "hash") return std::make_shared<const HashShardingPolicy>();
  return std::make_shared<const RangeShardingPolicy>(
      RangeShardingPolicy::ForDataset2D(data));
}

// Bit-identical, not approximately equal: every path must run the exact
// same arithmetic as CpnnExecutor2D::ExecuteKnn.
void ExpectIdenticalKnn(const CknnAnswer& expected, const QueryResult& got,
                        const std::string& what) {
  EXPECT_EQ(expected.ids, got.ids) << what;
  ASSERT_TRUE(got.knn.has_value()) << what;
  EXPECT_EQ(expected.ids, got.knn->ids) << what;
  ASSERT_EQ(expected.bounds.size(), got.knn->bounds.size()) << what;
  for (size_t i = 0; i < expected.bounds.size(); ++i) {
    EXPECT_EQ(expected.bounds[i].lower, got.knn->bounds[i].lower)
        << what << " bound " << i;
    EXPECT_EQ(expected.bounds[i].upper, got.knn->bounds[i].upper)
        << what << " bound " << i;
  }
  EXPECT_EQ(expected.bounds.size(), got.stats.candidates) << what;
}

TEST(Knn2DTest, FilterKByScan2DInvariants) {
  Dataset2D data = TestDataset2D();
  const Point2 q{500.0, 500.0};
  for (int k : {1, 2, 5, 17}) {
    FilterResult filtered = FilterKByScan2D(data, q, k);
    // fmin is the k-th smallest far point: at least k objects lie fully
    // within it, and every candidate's near point does not exceed it.
    size_t within = 0;
    for (const UncertainObject2D& obj : data) {
      if (obj.MaxDist(q) <= filtered.fmin) ++within;
    }
    EXPECT_GE(within, static_cast<size_t>(k)) << "k=" << k;
    EXPECT_GE(filtered.candidates.size(), static_cast<size_t>(k));
    for (uint32_t idx : filtered.candidates) {
      EXPECT_LE(data[idx].MinDist(q), filtered.fmin + kFilterBoundarySlack);
    }
    // k = 1 degenerates to the plain PNN filter.
    if (k == 1) {
      FilterResult pnn = FilterByScan2D(data, q);
      EXPECT_EQ(pnn.fmin, filtered.fmin);
      EXPECT_EQ(pnn.candidates, filtered.candidates);
    }
  }
}

TEST(Knn2DTest, EngineKnn2DBitIdenticalToExecutorBatchSubmitSerial) {
  Dataset2D data = TestDataset2D();
  CpnnExecutor2D sequential(data);
  EngineOptions eopt;
  eopt.num_threads = 4;
  QueryEngine engine(data, eopt);
  const QueryOptions opt = TestOptions();
  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(8, 0.0, 1000.0, /*seed=*/13);

  std::vector<QueryRequest> batch;
  for (Point2 p : points) batch.push_back(Knn2DQuery{p, 3, opt});
  std::vector<QueryResult> results = engine.ExecuteBatch(std::move(batch));
  ASSERT_EQ(results.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    CknnAnswer expected =
        sequential.ExecuteKnn(points[i], 3, opt.params, opt.integration);
    ExpectIdenticalKnn(expected, results[i],
                       "batch query " + std::to_string(i));
  }

  std::vector<std::future<QueryResult>> futures;
  for (Point2 p : points) {
    futures.push_back(engine.Submit(Knn2DQuery{p, 2, opt}));
  }
  for (size_t i = 0; i < points.size(); ++i) {
    CknnAnswer expected =
        sequential.ExecuteKnn(points[i], 2, opt.params, opt.integration);
    ExpectIdenticalKnn(expected, futures[i].get(),
                       "submit query " + std::to_string(i));
  }

  CknnAnswer expected =
      sequential.ExecuteKnn(points[0], 5, opt.params, opt.integration);
  ExpectIdenticalKnn(expected, engine.Execute(Knn2DQuery{points[0], 5, opt}),
                     "serial execute");
}

TEST(Knn2DTest, ShardedKnn2DBitIdenticalAcrossShardCountsAndPolicies) {
  for (bool clustered : {false, true}) {
    Dataset2D data = clustered ? ClusteredDataset2D() : TestDataset2D();
    const double domain = clustered ? 10000.0 : 1000.0;
    CpnnExecutor2D sequential(data);
    const QueryOptions opt = TestOptions();
    const std::vector<Point2> points =
        datagen::MakeQueryPoints2D(6, 0.0, domain, /*seed=*/7);

    for (size_t shards : {1u, 2u, 4u}) {
      for (const std::string& policy : {"hash", "range"}) {
        ShardedEngineOptions sopt;
        sopt.num_shards = shards;
        sopt.policy = MakePolicy2D(policy, data);
        sopt.num_threads = 2;
        ShardedQueryEngine sharded(data, sopt);

        for (int k : {1, 3, 7}) {
          std::vector<QueryRequest> batch;
          for (Point2 p : points) batch.push_back(Knn2DQuery{p, k, opt});
          std::vector<QueryResult> results =
              sharded.ExecuteBatch(std::move(batch));
          for (size_t i = 0; i < points.size(); ++i) {
            CknnAnswer expected = sequential.ExecuteKnn(
                points[i], k, opt.params, opt.integration);
            ExpectIdenticalKnn(
                expected, results[i],
                (clustered ? "clustered " : "uniform ") + policy + " shards " +
                    std::to_string(shards) + " k " + std::to_string(k) +
                    " query " + std::to_string(i));
          }
        }
      }
    }
  }
}

TEST(Knn2DTest, KLargerThanDatasetKeepsEveryObject) {
  Dataset2D data = TestDataset2D(12, /*seed=*/3);
  CpnnExecutor2D sequential(data);
  const QueryOptions opt = TestOptions();
  ShardedEngineOptions sopt;
  sopt.num_shards = 4;
  sopt.num_threads = 2;
  ShardedQueryEngine sharded(data, sopt);
  const Point2 q{400.0, 600.0};
  CknnAnswer expected =
      sequential.ExecuteKnn(q, 50, opt.params, opt.integration);
  EXPECT_EQ(expected.bounds.size(), data.size());
  ExpectIdenticalKnn(expected, sharded.Execute(Knn2DQuery{q, 50, opt}),
                     "k beyond dataset");
}

TEST(Knn2DTest, Knn2DWithoutDatasetThrows) {
  Dataset data1d;
  data1d.emplace_back(1, MakeUniformPdf(0.0, 1.0));
  QueryEngine engine(data1d, EngineOptions{1});
  EXPECT_THROW(engine.Execute(Knn2DQuery{{0.0, 0.0}, 2, TestOptions()}),
               std::exception);
  ShardedQueryEngine sharded(data1d, ShardedEngineOptions{});
  EXPECT_THROW(sharded.Execute(Knn2DQuery{{0.0, 0.0}, 2, TestOptions()}),
               std::exception);
}

TEST(Knn2DTest, EmptyDataset2DAnswersEmpty) {
  QueryEngine engine(Dataset2D{}, EngineOptions{1});
  QueryResult result = engine.Execute(Knn2DQuery{{1.0, 2.0}, 3, TestOptions()});
  EXPECT_TRUE(result.ids.empty());
  ASSERT_TRUE(result.knn.has_value());
  EXPECT_TRUE(result.knn->bounds.empty());

  ShardedQueryEngine sharded(Dataset2D{}, ShardedEngineOptions{});
  QueryResult sharded_result =
      sharded.Execute(Knn2DQuery{{1.0, 2.0}, 3, TestOptions()});
  EXPECT_TRUE(sharded_result.ids.empty());
  ASSERT_TRUE(sharded_result.knn.has_value());
  EXPECT_TRUE(sharded_result.knn->bounds.empty());
}

}  // namespace
}  // namespace pverify
