// Tests for the typed request model (engine/request.h): the move-only
// CandidatesQuery contract — copies fail to compile, re-submission of a
// consumed payload is rejected on both engines — and the derived-kind
// variant plumbing (kind()/options() across every payload).
#include "engine/request.h"

#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"

namespace pverify {
namespace {

// --- Compile-time contract: CandidatesQuery (and therefore QueryRequest,
// whose variant contains it) cannot be copied, only moved. ---------------
static_assert(!std::is_copy_constructible_v<CandidatesQuery>,
              "CandidatesQuery must not be copyable — copying would "
              "silently duplicate the consumable payload");
static_assert(!std::is_copy_assignable_v<CandidatesQuery>,
              "CandidatesQuery must not be copy-assignable");
static_assert(std::is_nothrow_move_constructible_v<CandidatesQuery>,
              "CandidatesQuery must be movable");
static_assert(!std::is_copy_constructible_v<QueryRequest>,
              "QueryRequest holds a move-only alternative, so the whole "
              "request is move-only");
static_assert(!std::is_copy_assignable_v<QueryRequest>,
              "QueryRequest must not be copy-assignable");
static_assert(std::is_move_constructible_v<QueryRequest>,
              "QueryRequest must be movable");
// The plain payload structs stay copyable — only the candidate set is
// consumable.
static_assert(std::is_copy_constructible_v<PointQuery> &&
                  std::is_copy_constructible_v<MinQuery> &&
                  std::is_copy_constructible_v<MaxQuery> &&
                  std::is_copy_constructible_v<KnnQuery> &&
                  std::is_copy_constructible_v<Point2DQuery>,
              "non-consumable payload structs are plain value types");

QueryOptions TestOptions() {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  return opt;
}

TEST(QueryRequestTest, KindIsDerivedFromTheEngagedPayload) {
  QueryOptions opt = TestOptions();
  EXPECT_EQ(QueryRequest(PointQuery{1.0, opt}).kind(), QueryKind::kPoint);
  EXPECT_EQ(QueryRequest(MinQuery{opt}).kind(), QueryKind::kMin);
  EXPECT_EQ(QueryRequest(MaxQuery{opt}).kind(), QueryKind::kMax);
  EXPECT_EQ(QueryRequest(KnnQuery{1.0, 3, opt}).kind(), QueryKind::kKnn);
  EXPECT_EQ(QueryRequest(CandidatesQuery(CandidateSet{}, opt)).kind(),
            QueryKind::kCandidates);
  EXPECT_EQ(QueryRequest(Point2DQuery{{1.0, 2.0}, opt}).kind(),
            QueryKind::kPoint2D);
  // Default request is a point query, like the old fat struct's default.
  EXPECT_EQ(QueryRequest{}.kind(), QueryKind::kPoint);
  EXPECT_EQ(ToString(QueryKind::kCandidates), "candidates");
}

TEST(QueryRequestTest, OptionsAccessorReachesEveryPayload) {
  QueryOptions opt = TestOptions();
  opt.report_probabilities = true;
  const std::vector<QueryRequest> requests = [&] {
    std::vector<QueryRequest> r;
    r.push_back(PointQuery{1.0, opt});
    r.push_back(MinQuery{opt});
    r.push_back(MaxQuery{opt});
    r.push_back(KnnQuery{1.0, 3, opt});
    r.push_back(CandidatesQuery(CandidateSet{}, opt));
    r.push_back(Point2DQuery{{1.0, 2.0}, opt});
    return r;
  }();
  for (const QueryRequest& request : requests) {
    EXPECT_TRUE(request.options().report_probabilities)
        << ToString(request.kind());
    EXPECT_EQ(request.options().params.threshold, 0.3)
        << ToString(request.kind());
  }
}

TEST(QueryRequestTest, MovingTransfersThePayloadExactlyOnce) {
  CandidatesQuery original(CandidateSet{}, TestOptions());
  EXPECT_TRUE(original.has_payload());

  CandidatesQuery moved = std::move(original);
  EXPECT_TRUE(moved.has_payload());
  EXPECT_FALSE(original.has_payload());

  (void)moved.TakeCandidates();
  EXPECT_FALSE(moved.has_payload());
  EXPECT_THROW(moved.TakeCandidates(), std::logic_error);
  EXPECT_THROW(original.TakeCandidates(), std::logic_error);
}

// Re-submission of a consumed CandidatesQuery is rejected by BOTH engine
// implementations, in every build type (the engine_test covers the
// unsharded serial/batch paths in more detail).
TEST(QueryRequestTest, BothEnginesRejectConsumedCandidatesRequests) {
  Dataset data = datagen::MakeUniformScatter(120, 100.0, 2.0, /*seed=*/5);
  QueryEngine unsharded(data, EngineOptions{1});
  ShardedQueryEngine sharded(data, ShardedEngineOptions{2, nullptr, 2});
  QueryOptions opt = TestOptions();
  const double q = 50.0;

  auto build_request = [&](const QueryEngine& engine) {
    FilterResult filtered = engine.executor().Filter(q);
    return QueryRequest(CandidatesQuery(
        CandidateSet::Build1D(engine.executor().dataset(),
                              filtered.candidates, q),
        opt));
  };

  for (Engine* engine : {static_cast<Engine*>(&unsharded),
                         static_cast<Engine*>(&sharded)}) {
    QueryRequest request = build_request(unsharded);
    QueryResult first = engine->Execute(std::move(request));
    EXPECT_GT(first.stats.candidates, 0u);
    EXPECT_THROW(engine->Execute(std::move(request)), std::logic_error);
  }
}

}  // namespace
}  // namespace pverify
