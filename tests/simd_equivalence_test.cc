// Scalar-vs-SIMD kernel equivalence: the vectorized verifier kernels
// (PVERIFY_SIMD) must classify every candidate identically to the scalar
// reference and produce probabilities within a tight ULP budget — the only
// permitted divergence is `omp simd` reduction reassociation in the Eq. 4
// bound refresh. Both code paths are always compiled (the runtime flag
// selects between them), so this suite is meaningful in every build: in a
// PVERIFY_SIMD=OFF build it checks the restructured branchless kernels
// against the reference scalar loops; in an ON build it additionally
// covers real vector execution.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/simd.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "ulp_testutil.h"

namespace pverify {
namespace {

constexpr uint64_t kUlpBudget = 64;

/// Restores the runtime kernel-selection flag on scope exit so a failing
/// assertion cannot leak a flipped flag into later tests.
class SimdFlagGuard {
 public:
  SimdFlagGuard() : saved_(SimdKernelsEnabled()) {}
  ~SimdFlagGuard() { SetSimdKernelsEnabled(saved_); }

 private:
  bool saved_;
};

/// Overlapping intervals around the origin so candidate sets stay large
/// and every verifier has work to do.
Dataset MakeOverlappingDataset(size_t n, uint64_t seed) {
  Dataset data;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 10.0);
    data.emplace_back(static_cast<ObjectId>(i),
                      MakeUniformPdf(lo, lo + rng.Uniform(30.0, 60.0)));
  }
  return data;
}

// Core level: the verifier chain alone (subregion table, RS → L-SR → U-SR
// with classification) must label identically and bound within budget.
TEST(SimdEquivalenceTest, VerifierChainMatchesScalarReference) {
  SimdFlagGuard guard;
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (size_t n : {16u, 96u, 256u}) {
      Dataset data = MakeOverlappingDataset(n, seed);
      std::vector<uint32_t> idx(n);
      for (uint32_t i = 0; i < n; ++i) idx[i] = i;
      const CandidateSet base = CandidateSet::Build1D(data, idx, 0.0);

      CandidateSet scalar_cands = base;
      SetSimdKernelsEnabled(false);
      VerificationFramework scalar_fw(&scalar_cands, CpnnParams{0.3, 0.01});
      scalar_fw.RunDefault();

      CandidateSet simd_cands = base;
      SetSimdKernelsEnabled(true);
      VerificationFramework simd_fw(&simd_cands, CpnnParams{0.3, 0.01});
      simd_fw.RunDefault();

      ASSERT_EQ(scalar_cands.size(), simd_cands.size());
      for (size_t i = 0; i < scalar_cands.size(); ++i) {
        EXPECT_EQ(scalar_cands[i].label, simd_cands[i].label)
            << "seed " << seed << " n " << n << " candidate " << i;
        EXPECT_ULP_NEAR(scalar_cands[i].bound.lower,
                        simd_cands[i].bound.lower, kUlpBudget);
        EXPECT_ULP_NEAR(scalar_cands[i].bound.upper,
                        simd_cands[i].bound.upper, kUlpBudget);
      }
    }
  }
}

/// Runs one batch through the engine with the given kernel flavor.
std::vector<QueryResult> RunBatch(Engine& engine,
                                  const std::vector<double>& points,
                                  const QueryOptions& options, bool simd) {
  SetSimdKernelsEnabled(simd);
  std::vector<QueryRequest> requests;
  requests.reserve(points.size());
  for (double q : points) requests.push_back(PointQuery{q, options});
  return engine.ExecuteBatch(std::move(requests));
}

void ExpectEquivalent(const std::vector<QueryResult>& scalar,
                      const std::vector<QueryResult>& simd,
                      const char* engine_name, Strategy strategy) {
  ASSERT_EQ(scalar.size(), simd.size());
  for (size_t q = 0; q < scalar.size(); ++q) {
    SCOPED_TRACE(testing::Message()
                 << engine_name << " strategy " << ToString(strategy)
                 << " query " << q);
    // Identical answer sets: classification must never differ.
    EXPECT_EQ(scalar[q].ids, simd[q].ids);
    ASSERT_EQ(scalar[q].candidate_probabilities.size(),
              simd[q].candidate_probabilities.size());
    for (size_t c = 0; c < scalar[q].candidate_probabilities.size(); ++c) {
      const AnswerEntry& a = scalar[q].candidate_probabilities[c];
      const AnswerEntry& b = simd[q].candidate_probabilities[c];
      EXPECT_EQ(a.id, b.id);
      EXPECT_ULP_NEAR(a.bound.lower, b.bound.lower, kUlpBudget);
      EXPECT_ULP_NEAR(a.bound.upper, b.bound.upper, kUlpBudget);
    }
  }
}

// Engine level, the property the ISSUE pins: identical candidate
// classifications and probabilities within the ULP budget across
// randomized workloads, all strategies, both engines.
TEST(SimdEquivalenceTest, AllStrategiesBothEnginesMatchScalarReference) {
  SimdFlagGuard guard;
  Dataset dataset = datagen::MakeSynthetic([] {
    datagen::SyntheticConfig config;
    config.count = 2500;
    config.seed = 31;
    return config;
  }());
  // A uniform spread plus a Zipf hot-spot workload: repeated probes of the
  // same hot region exercise identical candidate sets through both kernel
  // flavors.
  std::vector<double> points =
      datagen::MakeQueryPoints(6, 0.0, 10000.0, 41);
  datagen::ZipfConfig zipf;
  zipf.num_hotspots = 4;
  for (double p : datagen::MakeQueryPointsZipf(6, 0.0, 10000.0, zipf, 43)) {
    points.push_back(p);
  }

  QueryEngine flat(dataset, [] {
    EngineOptions options;
    options.num_threads = 2;
    return options;
  }());
  ShardedQueryEngine sharded(dataset, [] {
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.num_threads = 2;
    return options;
  }());

  for (Strategy strategy : {Strategy::kBasic, Strategy::kRefine,
                            Strategy::kVR, Strategy::kMonteCarlo}) {
    QueryOptions options;
    options.params = {0.25, 0.01};
    options.strategy = strategy;
    options.report_probabilities = true;

    ExpectEquivalent(RunBatch(flat, points, options, false),
                     RunBatch(flat, points, options, true), "QueryEngine",
                     strategy);
    ExpectEquivalent(RunBatch(sharded, points, options, false),
                     RunBatch(sharded, points, options, true),
                     "ShardedQueryEngine", strategy);
  }
}

/// Runs one k-NN batch through the engine with the given kernel flavor.
std::vector<QueryResult> RunKnnBatch(Engine& engine,
                                     const std::vector<double>& points, int k,
                                     const QueryOptions& options, bool simd) {
  SetSimdKernelsEnabled(simd);
  std::vector<QueryRequest> requests;
  requests.reserve(points.size());
  for (double q : points) requests.push_back(KnnQuery{q, k, options});
  return engine.ExecuteBatch(std::move(requests));
}

// k-NN coverage for the batched Poisson-binomial gather (knn.cc): both
// engines, both kernel flavors, same answers within the ULP budget.
TEST(SimdEquivalenceTest, KnnQueriesBothEnginesMatchScalarReference) {
  SimdFlagGuard guard;
  Dataset dataset = datagen::MakeSynthetic([] {
    datagen::SyntheticConfig config;
    config.count = 1200;
    config.seed = 57;
    return config;
  }());
  const std::vector<double> points =
      datagen::MakeQueryPoints(8, 0.0, 10000.0, 59);

  QueryEngine flat(dataset, [] {
    EngineOptions options;
    options.num_threads = 2;
    return options;
  }());
  ShardedQueryEngine sharded(dataset, [] {
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.num_threads = 2;
    return options;
  }());

  for (int k : {1, 3}) {
    QueryOptions options;
    options.params = {0.25, 0.01};
    options.report_probabilities = true;
    ExpectEquivalent(RunKnnBatch(flat, points, k, options, false),
                     RunKnnBatch(flat, points, k, options, true),
                     "QueryEngine", Strategy::kBasic);
    ExpectEquivalent(RunKnnBatch(sharded, points, k, options, false),
                     RunKnnBatch(sharded, points, k, options, true),
                     "ShardedQueryEngine", Strategy::kBasic);
  }
}

/// Restores the arch-flavor switch on scope exit (multiarch builds only
/// ever read it, but a leaked override would skew later tests).
class ArchFlagGuard {
 public:
  ArchFlagGuard() : saved_(ArchKernelsEnabled()) {}
  ~ArchFlagGuard() { SetArchKernelsEnabled(saved_); }

 private:
  bool saved_;
};

// Fat-binary dispatch: the selected flavor name must be consistent with
// what the binary carries, what the CPU supports, and the runtime switch.
// Under PVERIFY_KERNEL_ARCH=baseline (the CI forced-baseline leg) the env
// override flips ArchKernelsEnabled()'s default, so the same assertions
// hold there too.
TEST(SimdEquivalenceTest, ActiveFlavorMatchesDispatchState) {
  ArchFlagGuard guard;
  const bool arch_active =
      MultiArchCompiled() && ArchKernelsEnabled() && ArchKernelsSupportedByCpu();
  const std::string flavor = ActiveKernelFlavorName();
  if (arch_active) {
#if defined(PVERIFY_MULTIARCH_CPU)
    EXPECT_EQ(flavor, PVERIFY_MULTIARCH_CPU);
#endif
    EXPECT_NE(flavor, "baseline");
    // Forcing baseline must take effect immediately.
    SetArchKernelsEnabled(false);
    EXPECT_EQ(std::string(ActiveKernelFlavorName()), "baseline");
  } else {
    EXPECT_EQ(flavor, "baseline");
  }
  if (!MultiArchCompiled()) {
    EXPECT_FALSE(ArchKernelsSupportedByCpu());
  }
}

// Both flavors of a multiarch binary must agree: rerun the verifier chain
// with the arch kernels forced off and compare against the default
// selection. (Degenerates to baseline-vs-baseline when the host or build
// lacks the arch flavor — still a valid determinism check.)
TEST(SimdEquivalenceTest, ArchAndBaselineFlavorsAgree) {
  SimdFlagGuard simd_guard;
  ArchFlagGuard arch_guard;
  SetSimdKernelsEnabled(true);
  Dataset data = MakeOverlappingDataset(128, 91);
  std::vector<uint32_t> idx(data.size());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const CandidateSet base = CandidateSet::Build1D(data, idx, 0.0);

  SetArchKernelsEnabled(true);
  CandidateSet arch_cands = base;
  VerificationFramework arch_fw(&arch_cands, CpnnParams{0.3, 0.01});
  arch_fw.RunDefault();

  SetArchKernelsEnabled(false);
  CandidateSet base_cands = base;
  VerificationFramework base_fw(&base_cands, CpnnParams{0.3, 0.01});
  base_fw.RunDefault();

  ASSERT_EQ(arch_cands.size(), base_cands.size());
  for (size_t i = 0; i < arch_cands.size(); ++i) {
    EXPECT_EQ(arch_cands[i].label, base_cands[i].label) << "candidate " << i;
    EXPECT_ULP_NEAR(arch_cands[i].bound.lower, base_cands[i].bound.lower,
                    kUlpBudget);
    EXPECT_ULP_NEAR(arch_cands[i].bound.upper, base_cands[i].bound.upper,
                    kUlpBudget);
  }
}

// The ULP helper itself: keys order correctly around zero and the
// distance is symmetric, zero on equality, and huge for NaN.
TEST(SimdEquivalenceTest, UlpDistanceBasics) {
  using testutil::UlpDistance;
  EXPECT_EQ(UlpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0u);
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(UlpDistance(1.0, next), 1u);
  EXPECT_EQ(UlpDistance(next, 1.0), 1u);
  EXPECT_EQ(UlpDistance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  EXPECT_EQ(UlpDistance(0.0, std::numeric_limits<double>::denorm_min()), 1u);
  EXPECT_GT(UlpDistance(1.0, 1.0 + 1e-9), 1000000u);
  EXPECT_EQ(UlpDistance(std::numeric_limits<double>::quiet_NaN(), 1.0),
            std::numeric_limits<uint64_t>::max());
}

}  // namespace
}  // namespace pverify
